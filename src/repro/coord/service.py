"""Quorum-replicated coordination service (the Master's ZooKeeper).

The paper's Master is "a replicated state machine using the Paxos
consensus protocol", implemented in the prototype on ZooKeeper with
active-standby master processes (§IV-A, §V-B).  This module provides
that substrate: a small cluster of replicas running a leader-based
atomic broadcast (elections with epochs and log-completeness voting,
quorum-acknowledged commits — ZAB/Raft style) over the simulated
network, applying committed operations to a :class:`ZnodeTree`.

Simplifications relative to a production system, chosen deliberately
and documented here: log compaction/snapshots are omitted (runs are
finite), reads are served by the leader from applied state, and client
watches live on the leader with clients re-registering after failover
(as ZooKeeper clients do on reconnect).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.net.network import Network
from repro.net.rpc import RpcServer
from repro.sim import Event, Simulator
from repro.sim.rng import RngRegistry
from repro.coord.znode import ZnodeError, ZnodeTree

__all__ = ["CoordConfig", "CoordReplica", "LogEntry", "NotLeaderError", "Role"]


class NotLeaderError(Exception):
    """Raised to clients that contact a non-leader replica."""

    def __init__(self, hint: Optional[str]):
        super().__init__(f"NotLeader:{hint or '?'}")
        self.hint = hint


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class LogEntry:
    epoch: int
    index: int
    op: Tuple  # ("create", path, data, ephemeral_owner, sequential) etc.


@dataclass(frozen=True)
class CoordConfig:
    election_timeout_min: float = 0.50
    election_timeout_max: float = 1.00
    heartbeat_interval: float = 0.10
    session_timeout: float = 2.00
    session_check_interval: float = 0.25


class CoordReplica:
    """One replica of the coordination cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        peers: List[str],
        rng: Optional[RngRegistry] = None,
        config: CoordConfig = CoordConfig(),
    ):
        self.sim = sim
        self.network = network
        self.address = address
        self.peers = [p for p in peers if p != address]
        self.cluster_size = len(self.peers) + 1
        self.config = config
        self._rng = (rng or RngRegistry(0)).stream(f"coord:{address}")

        # Persistent state (would be on disk in a real system).
        self.current_epoch = 0
        self.voted_for: Optional[str] = None
        self.log: List[LogEntry] = []

        # Volatile state.
        self.role = Role.FOLLOWER
        self.leader_hint: Optional[str] = None
        self.commit_index = 0  # 1-based count of committed entries
        self.applied_index = 0
        self.tree = ZnodeTree()
        self.crashed = False

        # Leader-only state.
        self._next_index: Dict[str, int] = {}
        self._match_index: Dict[str, int] = {}
        self._pending_results: Dict[int, Event] = {}  # log index -> client waiter
        self._sessions_last_seen: Dict[str, float] = {}
        self._session_timeouts: Dict[str, float] = {}
        # Watches: path -> list of (watcher_address, watch_kind)
        self._watches: Dict[str, List[Tuple[str, str]]] = {}

        self._election_deadline = 0.0
        self.rpc = RpcServer(sim, network, address)
        self.rpc.register("coord.request_vote", self._on_request_vote)
        self.rpc.register("coord.append_entries", self._on_append_entries)
        self.rpc.register("coord.client_op", self._on_client_op)
        self.rpc.register("coord.ping_session", self._on_ping_session)
        self.rpc.register("coord.read", self._on_read)
        self.rpc.register("coord.watch", self._on_watch)
        self._bump_election_deadline()
        sim.process(self._election_timer())
        sim.process(self._session_expirer())

    # ------------------------------------------------------------------
    # crash/recover control (used by fault injection)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        self.crashed = True
        self.network.set_alive(self.address, False)
        if self.role is Role.LEADER:
            self.role = Role.FOLLOWER

    def recover(self) -> None:
        """Restart the replica; volatile state resets, the log survives."""
        self.crashed = False
        self.network.set_alive(self.address, True)
        self.role = Role.FOLLOWER
        self.leader_hint = None
        self._pending_results.clear()
        self._bump_election_deadline()

    # ------------------------------------------------------------------
    # elections
    # ------------------------------------------------------------------

    def _bump_election_deadline(self) -> None:
        self._election_deadline = self.sim.now + self._rng.uniform(
            self.config.election_timeout_min, self.config.election_timeout_max
        )

    def _election_timer(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(0.05)
            if self.crashed or self.role is Role.LEADER:
                continue
            if self.sim.now >= self._election_deadline:
                self.sim.process(self._run_election())
                self._bump_election_deadline()

    def _last_log_position(self) -> Tuple[int, int]:
        if not self.log:
            return (0, 0)
        last = self.log[-1]
        return (last.epoch, last.index)

    def _run_election(self) -> Generator[Event, None, None]:
        self.role = Role.CANDIDATE
        self.current_epoch += 1
        epoch = self.current_epoch
        self.voted_for = self.address
        votes = 1
        last_epoch, last_index = self._last_log_position()
        from repro.net.rpc import RpcClient  # local import to avoid cycle at module load

        client = _replica_client(self)
        pending = [
            self.sim.process(
                _safe_call(
                    client,
                    peer,
                    "coord.request_vote",
                    epoch,
                    self.address,
                    last_epoch,
                    last_index,
                    timeout=self.config.election_timeout_min / 2,
                )
            )
            for peer in self.peers
        ]
        for proc in pending:
            reply = yield proc
            if self.crashed or self.current_epoch != epoch or self.role is not Role.CANDIDATE:
                return
            if reply is None:
                continue
            granted, peer_epoch = reply
            if peer_epoch > self.current_epoch:
                self._step_down(peer_epoch)
                return
            if granted:
                votes += 1
            if votes > self.cluster_size // 2:
                self._become_leader()
                return

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.leader_hint = self.address
        last_index = len(self.log)
        self._next_index = {peer: last_index for peer in self.peers}
        self._match_index = {peer: 0 for peer in self.peers}
        # Fresh leader: give every known session a grace period.
        for session_id in self._sessions_last_seen:
            self._sessions_last_seen[session_id] = self.sim.now
        # Commit a no-op of the new epoch so entries inherited from prior
        # epochs become committable (the Raft "leader completeness" rule:
        # a leader only counts replicas for entries of its own epoch).
        self.log.append(LogEntry(self.current_epoch, len(self.log) + 1, ("noop",)))
        self.sim.process(self._heartbeat_loop(self.current_epoch))

    def _step_down(self, new_epoch: int) -> None:
        self.current_epoch = max(self.current_epoch, new_epoch)
        self.role = Role.FOLLOWER
        self.voted_for = None
        for waiter in self._pending_results.values():
            if not waiter.triggered:
                waiter.fail(NotLeaderError(self.leader_hint))
                waiter.defuse()
        self._pending_results.clear()
        self._bump_election_deadline()

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------

    def _heartbeat_loop(self, epoch: int) -> Generator[Event, None, None]:
        while (
            not self.crashed
            and self.role is Role.LEADER
            and self.current_epoch == epoch
        ):
            for peer in self.peers:
                self.sim.process(self._replicate_to(peer, epoch))
            yield self.sim.timeout(self.config.heartbeat_interval)

    def _replicate_to(self, peer: str, epoch: int) -> Generator[Event, None, None]:
        if self.crashed or self.role is not Role.LEADER or self.current_epoch != epoch:
            return
        next_index = self._next_index.get(peer, len(self.log))
        prev_epoch = self.log[next_index - 1].epoch if next_index > 0 else 0
        entries = self.log[next_index:]
        client = _replica_client(self)
        reply = yield self.sim.process(
            _safe_call(
                client,
                peer,
                "coord.append_entries",
                epoch,
                self.address,
                next_index,
                prev_epoch,
                [(e.epoch, e.index, e.op) for e in entries],
                self.commit_index,
                timeout=self.config.heartbeat_interval * 2,
            )
        )
        if reply is None or self.crashed or self.role is not Role.LEADER:
            return
        success, peer_epoch, peer_match = reply
        if peer_epoch > self.current_epoch:
            self._step_down(peer_epoch)
            return
        if success:
            self._match_index[peer] = peer_match
            self._next_index[peer] = peer_match
            self._advance_commit()
        else:
            self._next_index[peer] = max(0, next_index - 1)

    def _advance_commit(self) -> None:
        for candidate in range(len(self.log), self.commit_index, -1):
            if self.log[candidate - 1].epoch != self.current_epoch:
                continue
            acked = 1 + sum(
                1 for peer in self.peers if self._match_index.get(peer, 0) >= candidate
            )
            if acked > self.cluster_size // 2:
                self.commit_index = candidate
                break
        self._apply_committed()

    def _apply_committed(self) -> None:
        while self.applied_index < self.commit_index:
            entry = self.log[self.applied_index]
            self.applied_index += 1
            try:
                result: Any = self._apply(entry.op)
                ok = True
            except ZnodeError as exc:
                result = exc
                ok = False
            waiter = self._pending_results.pop(entry.index, None)
            if waiter is not None and not waiter.triggered:
                if ok:
                    waiter.succeed(result)
                else:
                    waiter.fail(result)

    def _apply(self, op: Tuple) -> Any:
        kind = op[0]
        if kind == "noop":
            return None
        if kind == "create":
            _, path, data, ephemeral_owner, sequential = op
            self.sim.touch_resource(f"znode:{self.address}{path}", write=True)
            actual = self.tree.create(path, data, ephemeral_owner, sequential)
            self._fire_watches(actual, "created")
            return actual
        if kind == "set":
            _, path, data = op
            self.sim.touch_resource(f"znode:{self.address}{path}", write=True)
            version = self.tree.set_data(path, data)
            self._fire_watches(path, "changed")
            return version
        if kind == "delete":
            _, path = op
            self.sim.touch_resource(f"znode:{self.address}{path}", write=True)
            self.tree.delete(path, recursive=True)
            self._fire_watches(path, "deleted")
            return True
        if kind == "create_session":
            _, session_id, timeout = op
            self._session_timeouts[session_id] = timeout
            self._sessions_last_seen.setdefault(session_id, self.sim.now)
            return session_id
        if kind == "expire_session":
            _, session_id = op
            removed = self.tree.delete_ephemerals_of(session_id)
            self._sessions_last_seen.pop(session_id, None)
            self._session_timeouts.pop(session_id, None)
            for path in removed:
                self._fire_watches(path, "deleted")
            return removed
        raise ZnodeError(f"unknown op {kind!r}")

    # ------------------------------------------------------------------
    # watches (leader-local)
    # ------------------------------------------------------------------

    def _fire_watches(self, path: str, event_type: str) -> None:
        if self.role is not Role.LEADER:
            return
        parent = path.rsplit("/", 1)[0] or "/"
        notified: List[Tuple[str, str, str]] = []
        for watched, kind in ((path, "node"), (parent, "children")):
            waiters = self._watches.pop(watched, None)
            if not waiters:
                continue
            keep = []
            for watcher_address, watch_kind in waiters:
                if watch_kind != kind:
                    keep.append((watcher_address, watch_kind))
                    continue
                notified.append((watcher_address, watched, event_type))
            if keep:
                self._watches[watched] = keep
        for watcher_address, watched, etype in notified:
            self.network.send(
                self.address,
                watcher_address,
                {"kind": "watch_event", "path": watched, "type": etype},
            )

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------

    def _on_request_vote(
        self, epoch: int, candidate: str, last_epoch: int, last_index: int
    ):
        if self.crashed:
            raise ZnodeError("crashed")
        if epoch > self.current_epoch:
            self._step_down(epoch)
        granted = False
        my_last = self._last_log_position()
        log_ok = (last_epoch, last_index) >= my_last
        if (
            epoch == self.current_epoch
            and log_ok
            and self.voted_for in (None, candidate)
            and self.role is not Role.LEADER
        ):
            granted = True
            self.voted_for = candidate
            self._bump_election_deadline()
        return (granted, self.current_epoch)

    def _on_append_entries(
        self,
        epoch: int,
        leader: str,
        start_index: int,
        prev_epoch: int,
        entries: list,
        leader_commit: int,
    ):
        if self.crashed:
            raise ZnodeError("crashed")
        if epoch < self.current_epoch:
            return (False, self.current_epoch, len(self.log))
        if epoch > self.current_epoch or self.role is not Role.FOLLOWER:
            self._step_down(epoch)
        self.leader_hint = leader
        self._bump_election_deadline()
        # Consistency check on the entry preceding start_index.
        if start_index > len(self.log):
            return (False, self.current_epoch, len(self.log))
        if start_index > 0 and self.log[start_index - 1].epoch != prev_epoch:
            del self.log[start_index - 1 :]
            return (False, self.current_epoch, len(self.log))
        del self.log[start_index:]
        for e_epoch, e_index, e_op in entries:
            self.log.append(LogEntry(e_epoch, e_index, e_op))
        if leader_commit > self.commit_index:
            self.commit_index = min(leader_commit, len(self.log))
            self._apply_committed()
        return (True, self.current_epoch, len(self.log))

    def _on_client_op(self, op: list):
        """Propose an operation; generator resolves when committed."""
        if self.crashed:
            raise ZnodeError("crashed")
        if self.role is not Role.LEADER:
            raise NotLeaderError(self.leader_hint)
        entry = LogEntry(self.current_epoch, len(self.log) + 1, tuple(op))
        self.log.append(entry)
        waiter = self.sim.event()
        self._pending_results[entry.index] = waiter
        epoch = self.current_epoch
        for peer in self.peers:
            self.sim.process(self._replicate_to(peer, epoch))

        def wait() -> Generator[Event, None, Any]:
            result = yield waiter
            return result

        return wait()

    def _on_ping_session(self, session_id: str):
        if self.crashed:
            raise ZnodeError("crashed")
        if self.role is not Role.LEADER:
            raise NotLeaderError(self.leader_hint)
        if session_id not in self._session_timeouts:
            raise ZnodeError(f"unknown session {session_id!r}")
        self._sessions_last_seen[session_id] = self.sim.now
        return True

    def _on_read(self, what: str, path: str):
        if self.crashed:
            raise ZnodeError("crashed")
        if self.role is not Role.LEADER:
            raise NotLeaderError(self.leader_hint)
        self.sim.touch_resource(f"znode:{self.address}{path}", write=False)
        if what == "get":
            return self.tree.get_data(path)
        if what == "exists":
            return self.tree.exists(path)
        if what == "children":
            return self.tree.get_children(path)
        raise ZnodeError(f"unknown read {what!r}")

    def _on_watch(self, watcher_address: str, path: str, kind: str):
        if self.crashed:
            raise ZnodeError("crashed")
        if self.role is not Role.LEADER:
            raise NotLeaderError(self.leader_hint)
        if kind not in ("node", "children"):
            raise ZnodeError(f"unknown watch kind {kind!r}")
        self._watches.setdefault(path, []).append((watcher_address, kind))
        return True

    # ------------------------------------------------------------------
    # session expiry
    # ------------------------------------------------------------------

    def _session_expirer(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.config.session_check_interval)
            if self.crashed or self.role is not Role.LEADER:
                continue
            now = self.sim.now
            expired = [
                sid
                for sid, last in self._sessions_last_seen.items()
                if now - last > self._session_timeouts.get(sid, self.config.session_timeout)
            ]
            for session_id in expired:
                self._sessions_last_seen.pop(session_id, None)
                generator = self._on_client_op(["expire_session", session_id])
                proc = self.sim.process(generator)
                proc.defuse()


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

_CLIENTS: Dict[str, Any] = {}


def _replica_client(replica: CoordReplica):
    """One shared RpcClient per replica (lazy, avoids inbox contention)."""
    from repro.net.rpc import RpcClient

    key = replica.address
    client = _CLIENTS.get(key)
    if client is None or client.sim is not replica.sim:
        client = RpcClient(replica.sim, replica.network, f"{key}.peerclient")
        _CLIENTS[key] = client
    return client


def _safe_call(client, target: str, method: str, *args, timeout: float):
    """RPC call that yields None instead of raising on failure."""
    from repro.net.rpc import RemoteError, RpcTimeout

    def run() -> Generator[Event, None, Any]:
        try:
            result = yield client.sim.process(
                client.call(target, method, *args, timeout=timeout)
            )
            return result
        except (RpcTimeout, RemoteError):
            return None

    return run()
