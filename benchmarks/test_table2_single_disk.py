"""Benchmark: regenerate Table II (single-disk throughput, §VII-A)."""

from repro.experiments import table2


def test_table2_single_disk(benchmark):
    result = benchmark(table2.run)
    print()
    print(table2.main())
    assert len(result["rows"]) == 36
    assert result["worst_error"] <= 0.12
