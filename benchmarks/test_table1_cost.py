"""Benchmark: regenerate Table I (cost comparison, §VI)."""

from repro.experiments import table1


def test_table1_cost(benchmark):
    result = benchmark(table1.run)
    print()
    print(table1.main())
    assert len(result["rows"]) == 5
    assert abs(result["capex_saving_vs_backblaze"] - 0.24) < 0.03
    assert abs(result["attex_saving_vs_backblaze"] - 0.55) < 0.04
