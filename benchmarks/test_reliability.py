"""Benchmark: reliability extensions (availability, rebuild, scrubbing)."""

from repro.experiments import reliability


def test_reliability_extensions(benchmark):
    result = benchmark.pedantic(reliability.run, rounds=1, iterations=1)
    print()
    print(reliability.main())
    assert all(result["anchors"].values()), result["anchors"]
