"""Benchmark: regenerate Table IV (hub power vs connected disks)."""

from repro.experiments import table4


def test_table4_hub_power(benchmark):
    result = benchmark(table4.run)
    print()
    print(table4.main())
    assert result["worst_error"] <= 0.05
