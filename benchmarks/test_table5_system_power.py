"""Benchmark: regenerate Table V (system power comparison, §VII-C)."""

from repro.experiments import table5


def test_table5_system_power(benchmark):
    result = benchmark(table5.run)
    print()
    print(table5.main())
    assert result["ordering_holds"]
    assert result["worst_error"] <= 0.15
