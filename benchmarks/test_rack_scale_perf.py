"""Scale suite: rack-scale allocator + kernel throughput acceptance.

Unlike the table/figure regeneration benchmarks in this directory,
these run the :mod:`repro.benchmarks` suite at full size (16 / 240 /
1920 disks) and assert the rack-scale performance contract:

* the whole ``alloc_scale`` sweep finishes in < 5 s wall;
* at 1920 disks the incremental allocator is >= 5x faster than the
  naive reference baseline;
* the optimized and naive allocations agree to 1e-9 at every size;
* the kernel's uninstrumented fast path is no slower than the fully
  instrumented loop.

Run with ``pytest benchmarks/test_rack_scale_perf.py`` (no
pytest-benchmark needed), or record history via
``python scripts/run_benchmarks.py alloc_scale kernel_throughput``.
"""

from repro.benchmarks import run_benchmark


def test_alloc_scale_contract():
    record = run_benchmark("alloc_scale", repeat=2)
    assert record["wall_seconds"] < 5.0, record
    by_disks = {size["disks"]: size for size in record["sizes"]}
    assert set(by_disks) == {16, 240, 1920}
    for size in by_disks.values():
        assert size["max_rel_diff_vs_naive"] < 1e-9, size
    assert by_disks[1920]["speedup_cold"] >= 5.0, by_disks[1920]
    assert by_disks[1920]["speedup_warm"] >= 5.0, by_disks[1920]


def test_kernel_throughput_contract():
    record = run_benchmark("kernel_throughput", repeat=2)
    assert record["events_per_second_fast"] > 0
    # The fast path must not be slower than the instrumented loop.
    assert record["fast_path_uplift"] >= 1.0, record
