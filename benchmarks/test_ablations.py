"""Benchmark: design-choice ablations (DESIGN.md §4)."""

import json

from repro.experiments import ablations


def test_switch_placement_ablation(benchmark):
    result = benchmark.pedantic(
        ablations.switch_placement_ablation, rounds=1, iterations=1
    )
    print()
    print(json.dumps(result, indent=2))
    assert (
        result["upper_switched"]["switches"] < result["leaf_switched"]["switches"]
    )


def test_allocation_policy_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.allocation_policy_ablation(num_services=3, spaces_per_service=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(json.dumps(result, indent=2))
    assert result["paper_rules"]["disks_shared_by_services"] == 0


def test_spin_down_policy_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.spin_down_policy_ablation(hours=12.0), rounds=1, iterations=1
    )
    print()
    print(json.dumps(result, indent=2))
    assert result["adaptive"]["spin_ups"] < result["fixed"]["spin_ups"]


def test_heartbeat_timeout_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.heartbeat_timeout_ablation(timeouts=(1.0, 4.0)),
        rounds=1,
        iterations=1,
    )
    print()
    print(json.dumps(result, indent=2))
    assert result[1.0]["recovery_seconds"] < result[4.0]["recovery_seconds"]
