"""Benchmark: §VII-B — HDFS write/read across a live disk switch."""

from repro.experiments import hdfs_switch


def test_hdfs_switch(benchmark):
    result = benchmark.pedantic(hdfs_switch.run, rounds=1, iterations=1)
    print()
    print(hdfs_switch.main())
    assert all(result["anchors"].values()), result["anchors"]
