"""Benchmark: regenerate Figure 5 (multi-disk throughput scaling)."""

from repro.experiments import figure5


def test_figure5_scaling(benchmark):
    result = benchmark.pedantic(figure5.run, rounds=1, iterations=1)
    print()
    print(figure5.main())
    assert all(result["anchors"].values()), result["anchors"]
