"""Benchmark: regenerate Figure 6 (switching time decomposition)."""

from repro.experiments import figure6
from repro.experiments.common import format_table


def test_figure6_switching(benchmark):
    # Trimmed sweep (3 counts x 3 repetitions) to keep the bench quick;
    # the full paper sweep is figure6.run() with the defaults.
    result = benchmark.pedantic(
        lambda: figure6.run(disk_counts=(1, 2, 4), repetitions=3),
        rounds=1,
        iterations=1,
    )
    print()
    print("Figure 6 (trimmed sweep): switching time decomposition")
    print(format_table(result["headers"], result["rows"]))
    for name, holds in result["anchors"].items():
        print(f"  anchor {name}: {'OK' if holds else 'FAILED'}")
    assert all(result["anchors"].values()), result["anchors"]
