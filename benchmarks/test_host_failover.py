"""Benchmark: §I — single-host failure recovery (paper: 5.8 s)."""

from repro.experiments import host_failover


def test_host_failover(benchmark):
    result = benchmark.pedantic(
        lambda: host_failover.run(repetitions=2), rounds=1, iterations=1
    )
    print()
    for trial in result["trials"]:
        print(
            f"  {trial['victim']}: reattach {trial['reattach_seconds']:.1f}s, "
            f"service {trial['service_resumed_seconds']:.1f}s"
        )
    print(
        f"  mean reattach {result['mean_reattach_seconds']:.1f}s "
        f"(paper {result['paper_recovery_seconds']}s)"
    )
    assert all(result["anchors"].values()), result["anchors"]
