"""Benchmark: regenerate Table III (one-disk power, §VII-C)."""

from repro.experiments import table3


def test_table3_disk_power(benchmark):
    result = benchmark(table3.run)
    print()
    print(table3.main())
    sata = result["measured"]["SATA"]
    usb = result["measured"]["USB bridge"]
    assert abs(sata[1] - 4.71) < 0.01 and abs(usb[1] - 5.76) < 0.01
    assert abs(sata[2] - 6.66) < 0.01 and abs(usb[2] - 7.56) < 0.01
