"""Benchmark: §VII-A duplex throughput (540 MB/s port, 2160 MB/s total)."""

from repro.experiments import duplex


def test_duplex_aggregate(benchmark):
    result = benchmark(duplex.run)
    print()
    print(duplex.main())
    assert abs(result["per_port_mb_s"] - 540.0) < 6.0
    assert abs(result["aggregate_mb_s"] - 2160.0) < 25.0
