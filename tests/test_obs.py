"""Tests for the repro.obs metrics/tracing layer (sim-time, deterministic)."""

import json

from repro.obs import (
    DEFAULT_DEPTH_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    export_json,
    export_text,
)
from repro.sim import Simulator


class TestCounters:
    def test_counter_counts_and_rejects_negatives(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        try:
            counter.inc(-1)
        except ValueError:
            pass
        else:
            raise AssertionError("negative increment must raise")
        assert counter.value == 3.5

    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("same") is registry.counter("same")


class TestGauges:
    def test_gauge_set_add_and_timestamp(self):
        clock = [0.0]
        registry = MetricsRegistry()
        registry.bind_clock(lambda: clock[0])
        gauge = registry.gauge("g")
        gauge.set(4.0)
        clock[0] = 7.5
        gauge.add(1.0)
        assert gauge.value == 5.0
        assert gauge.updated_at == 7.5


class TestHistograms:
    def test_percentiles_from_fixed_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("depth", DEFAULT_DEPTH_BUCKETS)
        for depth in [0, 1, 1, 2, 3, 8, 40]:
            hist.observe(depth)
        d = hist.as_dict()
        assert d["count"] == 7
        assert d["min"] == 0 and d["max"] == 40
        # p50 of [0,1,1,2,3,8,40] falls in the "2" bucket.
        assert hist.percentile(50.0) == 2
        # p99 lands in the top observed bucket, clamped to the max seen.
        assert hist.percentile(99.0) == 40

    def test_percentile_clamps_to_observed_max(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (1.0, 10.0, 100.0))
        hist.observe(2.0)
        # The sample sits in the (1, 10] bucket whose upper edge is 10,
        # but nothing larger than 2.0 was ever observed.
        assert hist.percentile(99.0) == 2.0


class TestSpans:
    def test_span_nesting_under_sim_clock(self):
        registry = MetricsRegistry()
        sim = Simulator(metrics=registry)

        def outer():
            with registry.span("outer"):
                yield sim.timeout(2.0)
                with registry.span("inner"):
                    yield sim.timeout(3.0)

        sim.run_until_event(sim.process(outer()))
        records = {r.name: r for r in registry.spans}
        assert records["outer"].depth == 0
        assert records["inner"].depth == 1
        assert records["inner"].parent_index == records["outer"].index
        assert records["inner"].start == 2.0
        assert records["inner"].duration == 3.0
        assert records["outer"].duration == 5.0
        summary = registry.span_summary()
        assert summary["outer"]["count"] == 1.0
        assert summary["outer"]["total_seconds"] == 5.0


class TestNullRegistry:
    def test_disabled_registry_is_a_no_op(self):
        assert NULL_REGISTRY.enabled is False
        counter = NULL_REGISTRY.counter("anything")
        counter.inc()
        gauge = NULL_REGISTRY.gauge("g")
        gauge.set(9.0)
        hist = NULL_REGISTRY.histogram("h", (1.0,))
        hist.observe(5.0)
        with NULL_REGISTRY.span("s"):
            pass
        dump = NULL_REGISTRY.dump()
        assert dump["counters"] == {}
        assert dump["gauges"] == {}
        assert dump["histograms"] == {}
        assert dump["spans"] == {}

    def test_simulator_defaults_to_null_registry(self):
        sim = Simulator()
        assert sim.metrics is NULL_REGISTRY
        sim.call_in(1.0, lambda: None)
        sim.run(until=2.0)
        assert sim.metrics.dump()["counters"] == {}


class TestDeterministicExport:
    def test_same_seed_figure5_runs_dump_identical_bytes(self):
        from repro.experiments import figure5

        dumps = []
        for _ in range(2):
            registry = MetricsRegistry()
            figure5.run(metrics=registry, seed=13)
            dumps.append(export_json(registry))
        assert dumps[0] == dumps[1]
        # And the dump is real, not empty.
        parsed = json.loads(dumps[0])
        assert parsed["counters"]["fabric.allocations"] > 0

    def test_export_text_renders_every_section(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", (1.0, 2.0)).observe(1.0)
        with registry.span("s"):
            pass
        text = export_text(registry)
        for token in ("c", "g", "h", "s"):
            assert token in text
