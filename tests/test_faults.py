"""Tests for fault injection and the failure-domain behaviours of §IV-E."""

import pytest

from repro.cluster import build_deployment
from repro.faults import FaultInjector, MttfSchedule, MONTH, YEAR
from repro.power import AdaptiveTimeoutPolicy, FixedTimeoutPolicy
from repro.sim import RngRegistry


def fresh():
    dep = build_deployment()
    dep.settle(15.0)
    return dep


class TestFaultInjector:
    def test_disk_failure_detaches_and_is_reported(self):
        dep = fresh()
        injector = FaultInjector(dep)
        host = dep.fabric.attached_host("disk0")
        injector.fail_disk("disk0")
        dep.settle(5.0)
        assert "disk0" not in dep.bus.os_view(host)
        assert injector.history[-1].kind == "disk_fail"

    def test_disk_repair_reattaches(self):
        dep = fresh()
        injector = FaultInjector(dep)
        injector.fail_disk("disk0")
        dep.settle(5.0)
        injector.repair_disk("disk0")
        dep.settle(10.0)
        assert any("disk0" in dep.bus.os_view(f"host{i}") for i in range(4))

    def test_hub_failure_takes_out_subtree(self):
        """§IV-E: a failed hub is one failure unit with its subtree view."""
        dep = fresh()
        injector = FaultInjector(dep)
        host = dep.fabric.attached_host("disk0")
        injector.fail_component("leafhub0")
        dep.settle(5.0)
        view = dep.bus.os_view(host)
        assert "disk0" not in view and "disk1" not in view

    def test_hub_failure_leaves_alternate_paths(self):
        """The Master can switch the paths away from a dead hub."""
        dep = fresh()
        injector = FaultInjector(dep)
        injector.fail_component("leafhub0")
        # disk0 still reaches other hosts through its alternate leaf hub.
        reachable = dep.fabric.reachable_hosts("disk0")
        assert reachable  # not empty
        assert "host2" in reachable or "host3" in reachable

    def test_controller_failover_keeps_commands_working(self):
        dep = fresh()
        injector = FaultInjector(dep)
        injector.fail_primary_controller()
        from repro.net import RpcClient

        rpc = RpcClient(dep.sim, dep.network, "tester")

        def scenario():
            result = yield from rpc.call(
                "unit0.controller1",
                "controller.execute",
                [("disk0", "host2")],
                timeout=40.0,
            )
            return result

        result = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert dep.fabric.attached_host("disk0") == "host2"

    def test_history_records_times(self):
        dep = fresh()
        injector = FaultInjector(dep)
        t = dep.sim.now
        injector.crash_host("host3")
        assert injector.history[0].time == t
        assert injector.history[0].target == "host3"


class TestMttfSchedule:
    def test_exponential_mean(self):
        schedule = MttfSchedule(RngRegistry(3))
        samples = [schedule.next_host_failure() for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(3.4 * MONTH, rel=0.1)

    def test_disk_failures_much_rarer_than_hosts(self):
        schedule = MttfSchedule(RngRegistry(3))
        horizon = 1 * YEAR
        host_failures = schedule.failures_within(horizon, 3.4 * MONTH)
        disk_failures = schedule.failures_within(horizon, 20 * YEAR)
        assert len(host_failures) > len(disk_failures)

    def test_failures_within_sorted_and_bounded(self):
        schedule = MttfSchedule(RngRegistry(3))
        times = schedule.failures_within(YEAR, MONTH)
        assert times == sorted(times)
        assert all(0 < t < YEAR for t in times)

    def test_deterministic_across_runs(self):
        a = MttfSchedule(RngRegistry(5)).next_host_failure()
        b = MttfSchedule(RngRegistry(5)).next_host_failure()
        assert a == b


class TestSpinDownPolicies:
    def test_fixed_policy_constant(self):
        policy = FixedTimeoutPolicy(idle_timeout=100.0)
        policy.on_spin_up("d", 0.0)
        policy.on_spin_up("d", 1.0)
        assert policy.timeout_for("d") == 100.0

    def test_adaptive_policy_backs_off(self):
        policy = AdaptiveTimeoutPolicy(idle_timeout=100.0, thrash_limit=3, thrash_window=1000.0)
        for i in range(4):
            policy.on_spin_up("d", float(i))
        assert policy.timeout_for("d") == 200.0

    def test_adaptive_policy_caps(self):
        policy = AdaptiveTimeoutPolicy(
            idle_timeout=100.0, thrash_limit=1, thrash_window=1e9, max_timeout=400.0
        )
        now = 0.0
        for _ in range(10):
            policy.on_spin_up("d", now)
            now += 1.0
        assert policy.timeout_for("d") == 400.0

    def test_adaptive_ignores_old_wakeups(self):
        policy = AdaptiveTimeoutPolicy(idle_timeout=100.0, thrash_limit=3, thrash_window=10.0)
        for t in (0.0, 1.0, 2.0):
            policy.on_spin_up("d", t)
        policy.on_spin_up("d", 1000.0)  # others aged out of the window
        assert policy.timeout_for("d") == 100.0

    def test_run_policy_spins_down_idle_disks(self):
        from repro.disk import DiskPowerState, SimulatedDisk
        from repro.power import run_policy
        from repro.sim import Simulator

        sim = Simulator()
        disks = {"d0": SimulatedDisk(sim, "d0")}
        run_policy(sim, disks, FixedTimeoutPolicy(idle_timeout=30.0), check_interval=5.0)
        sim.run(until=60.0)
        assert disks["d0"].power_state is DiskPowerState.SPUN_DOWN
