"""Property-based tests on the backup store's dedup invariants."""

from hypothesis import given, settings, strategies as st

from repro.backup import ArchiveStore, FileVersion, chunk_file
from repro.disk import SimulatedDisk
from repro.net import StorageVolume
from repro.sim import Simulator
from repro.workload import MB


class _LocalSpace:
    """MountedSpace-shaped wrapper over a local simulated disk, so the
    store can be property-tested without a whole deployment."""

    def __init__(self, sim, name):
        self.volume = StorageVolume(name, SimulatedDisk(sim, name))
        self.sim = sim

    def write(self, offset, size):
        yield self.volume.submit(offset, size, is_read=False)
        return {"ok": True}

    def read(self, offset, size):
        yield self.volume.submit(offset, size, is_read=True)
        return {"ok": True}


def make_store(sim):
    return ArchiveStore(
        sim, [_LocalSpace(sim, "s0"), _LocalSpace(sim, "s1")], space_bytes=10_000 * MB
    )


file_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),  # file name index
        st.integers(min_value=1, max_value=16 * MB),  # size
        st.integers(min_value=0, max_value=5),  # content seed
    ),
    min_size=1,
    max_size=12,
)


def to_versions(raw):
    seen = {}
    for name_index, size, seed in raw:
        # Same name appears once per snapshot; last one wins.
        seen[f"f{name_index}"] = FileVersion(f"f{name_index}", size, seed)
    return list(seen.values())


class TestDedupInvariants:
    @given(raw=file_lists)
    @settings(max_examples=30, deadline=None)
    def test_unique_bytes_never_exceed_logical(self, raw):
        sim = Simulator()
        store = make_store(sim)
        files = to_versions(raw)

        def scenario():
            return (yield from store.snapshot("s", files))

        stats = sim.run_until_event(sim.process(scenario()))
        assert stats.unique_bytes <= stats.logical_bytes
        assert stats.chunks_new <= stats.chunks_total
        assert stats.logical_bytes == sum(f.size for f in files)

    @given(raw=file_lists)
    @settings(max_examples=30, deadline=None)
    def test_second_identical_snapshot_writes_nothing(self, raw):
        sim = Simulator()
        store = make_store(sim)
        files = to_versions(raw)

        def scenario():
            yield from store.snapshot("one", files)
            second = yield from store.snapshot("two", files)
            return second

        stats = sim.run_until_event(sim.process(scenario()))
        assert stats.unique_bytes == 0
        assert stats.chunks_new == 0

    @given(raw=file_lists)
    @settings(max_examples=25, deadline=None)
    def test_restore_returns_exact_logical_bytes(self, raw):
        sim = Simulator()
        store = make_store(sim)
        files = to_versions(raw)

        def scenario():
            stats = yield from store.snapshot("s", files)
            result = yield from store.restore("s")
            return stats, result

        stats, result = sim.run_until_event(sim.process(scenario()))
        assert result["bytes_restored"] == stats.logical_bytes

    @given(raw=file_lists, edit_seed=st.integers(min_value=100, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_stored_bytes_equals_sum_of_new_chunks(self, raw, edit_seed):
        sim = Simulator()
        store = make_store(sim)
        files = to_versions(raw)

        def scenario():
            first = yield from store.snapshot("one", files)
            edited = [files[0].edited(edit_seed)] + files[1:]
            second = yield from store.snapshot("two", edited)
            return first, second

        first, second = sim.run_until_event(sim.process(scenario()))
        assert store.stored_bytes == first.unique_bytes + second.unique_bytes

    @given(
        size=st.integers(min_value=1, max_value=64 * MB),
        chunk=st.integers(min_value=1024, max_value=8 * MB),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunking_partitions_exactly(self, size, chunk):
        chunks = chunk_file(FileVersion("f", size, 0), chunk_bytes=chunk)
        assert sum(c.size for c in chunks) == size
        assert all(c.size <= chunk for c in chunks)
        assert len({c.fingerprint for c in chunks}) == len(chunks)
