"""Tests for the power (Table V) and cost (Table I) models."""

import pytest

from repro.cost import (
    BillOfMaterials,
    cost_table,
    render_cost_table,
    ustore_estimate,
    ustore_savings_vs_backblaze,
)
from repro.fabric import prototype_fabric
from repro.power import dd860_power, pergamum_power, ustore_power


class TestTable5Power:
    def test_ustore_spinning_near_paper(self):
        total = ustore_power(prototype_fabric(), spinning=True).wall_total
        assert total == pytest.approx(166.8, rel=0.10)

    def test_ustore_powered_off_near_paper(self):
        total = ustore_power(prototype_fabric(), spinning=False).wall_total
        assert total == pytest.approx(22.1, rel=0.15)

    def test_pergamum_spinning_near_paper(self):
        assert pergamum_power(spinning=True).wall_total == pytest.approx(193.5, rel=0.10)

    def test_pergamum_powered_off_near_paper(self):
        assert pergamum_power(spinning=False).wall_total == pytest.approx(28.9, rel=0.10)

    def test_dd860_published_values(self):
        assert dd860_power(True) == 222.5
        assert dd860_power(False) == 83.5

    def test_ordering_matches_paper(self):
        """Table V: UStore < Pergamum < DD860 in both states."""
        fabric = prototype_fabric()
        for spinning in (True, False):
            ustore = ustore_power(fabric, spinning).wall_total
            pergamum = pergamum_power(spinning).wall_total
            dd860 = dd860_power(spinning)
            assert ustore < pergamum < dd860

    def test_fabric_gating_saves_most_interconnect_power(self):
        """§VII-C: powered-off fabric drops by ~71% or more."""
        fabric = prototype_fabric()
        on = ustore_power(fabric, spinning=True).interconnect
        off = ustore_power(fabric, spinning=False).interconnect
        assert off < 0.35 * on


class TestBom:
    def test_markup_applies_only_where_asked(self):
        bom = BillOfMaterials("t")
        bom.add("ic", 1.0, 10, markup=True)
        bom.add("chassis", 100.0, 1)
        assert bom.total() == 10 * 1.0 * 2 + 100.0

    def test_negative_rejected(self):
        bom = BillOfMaterials("t")
        with pytest.raises(ValueError):
            bom.add("x", -1.0, 1)

    def test_subtotal(self):
        bom = BillOfMaterials("t")
        bom.add("a", 1.0, 1)
        bom.add("b", 2.0, 1)
        assert bom.subtotal("a") == 1.0

    def test_render_mentions_items(self):
        bom = ustore_estimate().bom
        text = bom.render()
        assert "bridge" in text and "TOTAL" in text


class TestTable1Cost:
    # Table I, thousands of dollars.
    PAPER = {
        "DELL PowerVault MD3260i": (3340, 1525),
        "Sun StorageTek SL150": (1748, None),
        "Pergamum": (756, 415),
        "BACKBLAZE": (598, 257),
        "UStore": (456, 115),
    }

    def test_all_rows_near_paper(self):
        for row in cost_table():
            capex, attex = self.PAPER[row.system]
            assert row.capex_thousands == pytest.approx(capex, rel=0.05), row.system
            if attex is None:
                assert row.attex is None
            else:
                assert row.attex_thousands == pytest.approx(attex, rel=0.05), row.system

    def test_ustore_is_cheapest(self):
        rows = cost_table()
        ustore = [r for r in rows if r.system == "UStore"][0]
        assert ustore.capex == min(r.capex for r in rows)
        others = [r.attex for r in rows if r.attex is not None and r.system != "UStore"]
        assert all(ustore.attex < a for a in others)

    def test_headline_savings(self):
        savings = ustore_savings_vs_backblaze()
        assert savings["capex_saving"] == pytest.approx(0.24, abs=0.03)
        assert savings["attex_saving"] == pytest.approx(0.55, abs=0.04)

    def test_render_has_all_systems(self):
        text = render_cost_table()
        for system in self.PAPER:
            assert system in text


class TestPowerMeter:
    def test_meter_tracks_spin_down(self):
        from repro.cluster import build_deployment
        from repro.power import PowerMeter

        dep = build_deployment()
        dep.settle(15.0)
        meter = PowerMeter(dep, interval=1.0)
        spinning = meter.instantaneous_watts()
        for disk in dep.disks.values():
            disk.spin_down()
        spun_down = meter.instantaneous_watts()
        assert spun_down < spinning
        # All 16 disks idle -> spun-down saves (5.76-1.56)*16/0.9 at the wall.
        assert spinning - spun_down == pytest.approx(16 * (5.76 - 1.56) / 0.9, rel=0.01)

    def test_meter_sampling(self):
        from repro.cluster import build_deployment
        from repro.power import PowerMeter

        dep = build_deployment()
        dep.settle(5.0)
        meter = PowerMeter(dep, interval=0.5)
        meter.start()
        dep.settle(5.0)
        assert len(meter.series) >= 9
        assert meter.energy_joules() > 0
