"""Rack-scale builders and the benchmark suite."""

from __future__ import annotations

import json

import pytest

from repro.benchmarks import append_record, available_benchmarks, run_benchmark
from repro.benchmarks.suite import bench_experiment
from repro.cli import main as cli_main
from repro.fabric import FabricError, rack_fabric, validate_fabric


class TestRackFabric:
    def test_pod_counts(self):
        fabric = rack_fabric(3)
        assert len(fabric.disks) == 48
        assert len(fabric.host_ports) == 12
        assert fabric.name == "rack-3x16d-12h"

    def test_every_disk_attached(self):
        fabric = rack_fabric(2)
        for disk in fabric.disks:
            assert fabric.attached_port(disk.node_id) is not None

    def test_pods_are_isolated(self):
        fabric = rack_fabric(2)
        for disk in fabric.disks:
            pod_prefix = disk.node_id.split("-")[0]
            path = fabric.active_path(disk.node_id)
            assert all(node.startswith(f"{pod_prefix}-") for node in path)

    def test_validates(self):
        # Reachability is pod-local by design; disks cannot reach hosts
        # in other pods, so full-rack reachability is not required.
        fabric = rack_fabric(2)
        report = validate_fabric(fabric, require_full_reachability=False)
        assert report.ok, report.errors
        assert report.min_reachable_hosts == 4

    def test_rejects_zero_pods(self):
        with pytest.raises(FabricError):
            rack_fabric(0)

    def test_benchmark_sizes_exist(self):
        # The alloc_scale sweep sizes: 16 / 240 / 1920 disks.
        assert len(rack_fabric(1).disks) == 16
        assert len(rack_fabric(15).disks) == 240


class TestBenchmarkSuite:
    def test_available_names(self):
        names = available_benchmarks()
        assert "alloc_scale" in names
        assert "kernel_throughput" in names
        assert "figure5" in names

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            run_benchmark("nope")

    def test_alloc_scale_smoke_record(self):
        record = run_benchmark("alloc_scale", repeat=1, seed=7, smoke=True)
        assert record["schema_version"] == 2
        assert record["experiment"] == "alloc_scale"
        assert record["wall_seconds"] > 0
        (size,) = record["sizes"]
        assert size["disks"] == 16
        assert size["opt_warm_seconds"] > 0
        assert size["naive_seconds"] > 0
        # The benchmark cross-checks optimized vs naive internally.
        assert size["max_rel_diff_vs_naive"] < 1e-9

    def test_kernel_throughput_record(self):
        record = run_benchmark("kernel_throughput", repeat=1, smoke=True)
        assert record["sim_events"] == 20_000.0
        assert record["events_per_second_fast"] > 0
        assert record["events_per_second_instrumented"] > 0

    def test_experiment_bench_settles_for_sim_events(self):
        record = bench_experiment("figure5", repeat=1)
        assert record["sim_events"] > 0
        assert record["counters"]["fabric.allocations"] > 0
        assert record["params"] == {"settle_seconds": 12.0}

    def test_append_record_accumulates(self, tmp_path):
        record = {"schema_version": 1, "experiment": "alloc_scale", "wall_seconds": 1}
        path = append_record(tmp_path, record)
        append_record(tmp_path, record)
        history = json.loads(path.read_text())
        assert len(history) == 2


class TestBenchCli:
    def test_bench_smoke(self, capsys):
        assert cli_main(["bench", "alloc_scale", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "alloc_scale" in out and "16 disks" in out

    def test_bench_json(self, capsys):
        assert cli_main(["bench", "kernel_throughput", "--smoke", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["experiment"] == "kernel_throughput"

    def test_bench_unknown(self, capsys):
        assert cli_main(["bench", "nope"]) == 2

    def test_bench_writes_records(self, tmp_path, capsys):
        assert (
            cli_main(
                ["bench", "alloc_scale", "--smoke", "--out-dir", str(tmp_path)]
            )
            == 0
        )
        history = json.loads((tmp_path / "BENCH_alloc_scale.json").read_text())
        assert history[0]["experiment"] == "alloc_scale"
