"""Replay-determinism regression: same seeds => byte-identical runs.

Runs the figure5 and reliability experiments twice each with the race
detector armed and an :class:`EventDigest` attached.  The digests fold
every processed event's ``(time, priority, seq)`` into SHA-256, so
equal digests mean the kernels popped exactly the same events in
exactly the same order.  Results are also compared by ``repr`` to
cover value-level determinism (figure5 is closed-form and processes no
events, so its digest alone would be vacuous).
"""

from repro.experiments import figure5, reliability
from repro.sim import EventDigest


def run_twice(experiment):
    digests, results = [], []
    for _ in range(2):
        digest = EventDigest()
        results.append(experiment.run(detect_races=True, event_digest=digest))
        digests.append(digest)
    return digests, results


def test_figure5_replays_identically():
    digests, results = run_twice(figure5)
    assert digests[0].hexdigest() == digests[1].hexdigest()
    assert repr(results[0]) == repr(results[1])


def test_figure5_reports_no_races():
    _, results = run_twice(figure5)
    assert results[0]["races"] == []


def test_reliability_replays_identically():
    digests, results = run_twice(reliability)
    assert digests[0].hexdigest() == digests[1].hexdigest()
    assert digests[0].events == digests[1].events
    assert digests[0].events > 0, "reliability should process events"
    assert repr(results[0]) == repr(results[1])


def test_reliability_reports_no_races():
    _, results = run_twice(reliability)
    assert results[0]["races"] == []
