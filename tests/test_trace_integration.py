"""End-to-end tracing through the full stack.

Property under test — the *attribution identity*: for every traced
gateway request, the phase segments stamped across gateway admission,
power accounting, batching, ClientLib, iSCSI, and the disk mechanical
model partition ``[start, end]`` exactly, so the per-component
durations sum to the measured end-to-end latency.  Checked on a clean
batch/FIFO run, under a mid-batch host crash with remount, and across
a double run for byte-identical canonical exports.
"""

import json
from pathlib import Path

import pytest

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.experiments import gateway_slo
from repro.gateway import (
    Gateway,
    GatewayConfig,
    ObjectRef,
    ReadObject,
    TenantSpec,
    mount_gateway_spaces,
)
from repro.obs import (
    COMPONENTS,
    CriticalPathAnalyzer,
    RequestTracer,
    export_chrome_trace,
    export_trace_jsonl,
)
from repro.workload import MB

FIXTURES = Path(__file__).parent / "fixtures"

TENANT = TenantSpec(name="t0", weight=1.0, slo_seconds=600.0, max_queue_depth=64)


def build_traced(seed=13, **config_kwargs):
    tracer = RequestTracer()
    dep = build_deployment(config=DeploymentConfig(seed=seed), tracer=tracer)
    dep.settle(15.0)
    objects, spaces = mount_gateway_spaces(dep, 64 * MB)
    for disk_id in sorted(dep.disks):
        dep.disks[disk_id].spin_down()
    gateway = Gateway(
        dep.sim, (TENANT,), GatewayConfig(scheduler="batch", **config_kwargs)
    )
    gateway.attach(objects, spaces, dep.disks, host_of=dep.host_of_disk)
    gateway.start()
    return tracer, dep, gateway, objects, spaces


def drain(dep, gateway, cap=300.0):
    deadline = dep.sim.now + cap
    dep.sim.run(until=dep.sim.now + 1.0)
    while not gateway.drained() and dep.sim.now < deadline:
        dep.sim.run(until=dep.sim.now + 5.0)
    assert gateway.drained(), "gateway failed to drain"


def assert_identity(tracer):
    analyzer = CriticalPathAnalyzer()
    requests = [ctx for ctx in tracer.completed if ctx.kind == "request"]
    assert requests, "run produced no traced requests"
    for ctx in requests:
        report = analyzer.analyze(ctx)
        assert report["identity_ok"], (
            f"trace {ctx.trace_id}: components sum to "
            f"{sum(report['components'].values())}, latency {report['latency']}"
        )
        assert set(report["components"]) <= set(COMPONENTS)
        if ctx.segments:
            # Segments are a gap-free, ordered partition of [start, end].
            assert ctx.segments[0].start == ctx.start
            assert ctx.segments[-1].end == ctx.end
            for before, after in zip(ctx.segments, ctx.segments[1:]):
                assert before.end == after.start
        else:
            # Instant lifecycles (e.g. admission rejections) carry no
            # segments; the identity degenerates to 0 == 0.
            assert ctx.latency == 0.0
    return requests


def test_clean_run_attribution_identity():
    tracer, dep, gateway, objects, spaces = build_traced()
    target = objects[0]
    requests = []

    def burst():
        for i in range(4):
            requests.append(gateway.submit(ReadObject("t0", ObjectRef(target.space_id, i * MB, 1 * MB))))

    dep.sim.call_in(0.0, burst)
    drain(dep, gateway)
    traced = assert_identity(tracer)
    assert len(traced) == 4
    # A cold read on a spun-down disk must attribute real time to the
    # power/mechanical path somewhere in the batch.
    totals = CriticalPathAnalyzer().aggregate(traced)["components"]
    assert totals.get("spinup", 0.0) + totals.get("disk_queue", 0.0) > 0.0
    assert totals.get("transfer", 0.0) > 0.0
    for ctx in traced:
        assert ctx.tenant == "t0"
        assert ctx.status == "ok"
        assert ctx.attrs["slo_missed"] is False


def test_mid_batch_crash_remount_attribution_identity():
    """The hard case: the endpoint dies mid-batch, the ClientLib times
    out, invalidates the doomed attempt's scope, remounts, and retries.
    The stale server-side process must stamp nothing, and the identity
    must still hold with the dead time attributed to failover."""
    tracer, dep, gateway, objects, spaces = build_traced()
    target = objects[0]
    host = dep.host_of_disk(target.disk_id)
    assert host is not None
    requests = []

    def burst():
        for i in range(6):
            requests.append(gateway.submit(ReadObject("t0", ObjectRef(target.space_id, i * MB, 1 * MB))))

    dep.sim.call_in(0.0, burst)
    dep.sim.run(until=dep.sim.now + 8.05)
    assert gateway.outstanding() > 0, "crash must land mid-batch"
    dep.crash_host(host)
    drain(dep, gateway)

    assert gateway.stats.completed == 6
    traced = assert_identity(tracer)
    assert len(traced) == 6
    space = spaces[target.space_id]
    assert space.stats.remounts >= 1
    # The recovery cost is visible in the attribution and on the event
    # stream of at least one affected request.
    totals = CriticalPathAnalyzer().aggregate(traced)["components"]
    assert totals.get("failover", 0.0) > 0.0
    event_names = {e.name for ctx in traced for e in ctx.events}
    assert "iscsi.session_error" in event_names
    assert "clientlib.remounted" in event_names
    # The master's failover shows up as a finished system-kind trace.
    system = [ctx for ctx in tracer.completed if ctx.kind == "system"]
    assert any(ctx.name == "master.failover" and ctx.status == "ok" for ctx in system)


def test_double_run_trace_exports_are_byte_identical():
    """Same seed, tracing armed twice: the canonical JSONL and Chrome
    exports must match byte for byte (satellite: trace determinism)."""
    exports = []
    for _ in range(2):
        tracer = RequestTracer()
        gateway_slo.run_point("batch", seed=11, duration=20.0, tracer=tracer)
        exports.append(
            (
                export_trace_jsonl(tracer.completed),
                export_chrome_trace(tracer.completed, tracer.instants),
            )
        )
    assert exports[0][0] == exports[1][0], "JSONL export differs across replays"
    assert exports[0][1] == exports[1][1], "Chrome export differs across replays"
    assert exports[0][0], "export was empty"


def test_traced_run_point_summary_and_slo_section():
    tracer = RequestTracer()
    summary = gateway_slo.run_point("batch", seed=11, duration=20.0, tracer=tracer)
    trace = summary["trace"]
    assert trace["completed"] == len(tracer.completed)
    assert trace["attribution"]["identity_failures"] == 0
    assert trace["attribution"]["traces"] > 0
    assert set(trace["slo"]["tenants"]) == {"archival", "interactive"}
    # Monitor and recorder were detached at the end of the run, so the
    # tracer can be reused on another deployment without leaking sinks.
    assert tracer._sinks == []
    assert tracer._instant_sinks == []


def test_rejected_requests_are_traced_as_rejected():
    tracer, dep, gateway, objects, spaces = build_traced()
    target = objects[0]
    done = []

    def flood():
        for i in range(TENANT.max_queue_depth + 8):
            try:
                gateway.submit(ReadObject("t0", ObjectRef(target.space_id, 0, 1 * MB)))
            except Exception:
                pass
        done.append(True)

    dep.sim.call_in(0.0, flood)
    dep.sim.run(until=dep.sim.now + 0.5)
    assert done
    rejected = [ctx for ctx in tracer.completed if ctx.status == "rejected"]
    assert rejected, "overflow must produce rejected traces"
    for ctx in rejected:
        assert ctx.latency == 0.0
        assert any(e.name == "admission.rejected" for e in ctx.events)
    drain(dep, gateway, cap=600.0)
    assert_identity(tracer)


def test_cli_trace_json_matches_golden_fixture(capsys):
    """`repro trace --json` is replay-stable: its canonical JSON output
    is pinned as a golden file (regenerate with
    ``python -m repro trace --json --duration 20 --seed 11``)."""
    from repro.cli import main

    status = main(["trace", "--json", "--duration", "20", "--seed", "11"])
    assert status == 0
    output = capsys.readouterr().out.strip()
    document = json.loads(output)
    golden_path = FIXTURES / "trace_cli_golden.json"
    golden = json.loads(golden_path.read_text())
    assert document == golden
    # Byte-level canonical match, not just structural equality.
    assert output == golden_path.read_text().strip()
    assert document["attribution"]["identity_failures"] == 0
