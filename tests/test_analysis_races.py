"""Same-timestamp race detector: synthetic conflicts and benign cases."""

from repro.analysis import Race, RaceDetector
from repro.sim import Simulator, Store


def writer(sim, store, item):
    yield sim.timeout(1.0)
    store.put(item)


def test_same_timestamp_writes_to_named_store_flagged():
    sim = Simulator(detect_races=True)
    store = Store(sim, name="mailbox")
    sim.process(writer(sim, store, "a"))
    sim.process(writer(sim, store, "b"))
    sim.run()
    races = sim.races
    assert len(races) == 1
    race = races[0]
    assert race.resource == "mailbox"
    assert race.time == 1.0
    assert len(race.seqs) == 2
    assert "mailbox" in race.render()


def test_different_timestamps_not_flagged():
    sim = Simulator(detect_races=True)
    store = Store(sim, name="mailbox")

    def staggered(delay, item):
        yield sim.timeout(delay)
        store.put(item)

    sim.process(staggered(1.0, "a"))
    sim.process(staggered(2.0, "b"))
    sim.run()
    assert sim.races == []


def test_anonymous_store_untracked():
    sim = Simulator(detect_races=True)
    store = Store(sim)  # no name: opted out of detection
    sim.process(writer(sim, store, "a"))
    sim.process(writer(sim, store, "b"))
    sim.run()
    assert sim.races == []


def test_concurrent_reads_benign():
    sim = Simulator(detect_races=True)

    def reader():
        yield sim.timeout(1.0)
        sim.touch_resource("config", write=False)

    sim.process(reader())
    sim.process(reader())
    sim.run()
    assert sim.races == []


def test_read_write_conflict_flagged():
    sim = Simulator(detect_races=True)

    def toucher(write):
        yield sim.timeout(1.0)
        sim.touch_resource("config", write=write)

    sim.process(toucher(True))
    sim.process(toucher(False))
    sim.run()
    races = sim.races
    assert len(races) == 1
    assert races[0].writes == 1


def test_detection_off_by_default():
    sim = Simulator()
    store = Store(sim, name="mailbox")
    sim.process(writer(sim, store, "a"))
    sim.process(writer(sim, store, "b"))
    sim.run()
    assert sim.races == []


def test_detector_touch_outside_event_is_noop():
    detector = RaceDetector()
    detector.touch("resource", write=True)
    assert detector.report() == []


def test_race_is_plain_data():
    race = Race(time=1.0, priority=0, resource="r", seqs=(3, 4), writes=2)
    assert "r" in race.render()
    assert race == Race(time=1.0, priority=0, resource="r", seqs=(3, 4), writes=2)
    assert race.labels == ()


def test_race_labels_point_at_source():
    sim = Simulator(detect_races=True)
    store = Store(sim, name="mailbox")
    sim.process(writer(sim, store, "a"))
    sim.process(writer(sim, store, "b"))
    sim.run()
    (race,) = sim.races
    assert len(race.labels) == len(race.seqs) == 2
    # Both conflicting events resume the ``writer`` process generator.
    assert all("writer" in label for label in race.labels)
    assert "writer" in race.render()


def test_race_labels_for_plain_callbacks():
    sim = Simulator(detect_races=True)

    def bump(_event):
        sim.touch_resource("counter", write=True)

    sim.timeout(1.0).callbacks.append(bump)
    sim.timeout(1.0).callbacks.append(bump)
    sim.run()
    (race,) = sim.races
    assert all("bump" in label for label in race.labels)
