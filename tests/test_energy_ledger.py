"""Energy attribution ledger and its conservation identity.

Property under test — the *energy conservation identity* (DESIGN §15):
over any window, the per-account joules booked by the
:class:`EnergyLedger` (``tenant:*`` + ``system`` + ``idle`` +
``overhead``) sum exactly to the :class:`PowerMeter` wall-energy
integral, up to the auditor's floating-point tolerance.  Checked on
synthetic samples, on a clean end-to-end gateway run, under a
mid-batch host crash with remount, and across a double run for
byte-identical canonical exports.
"""

import json

import pytest

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.disk.device import IoRequest, SimulatedDisk
from repro.experiments import gateway_slo, tiering_staging
from repro.gateway import (
    Gateway,
    GatewayConfig,
    ObjectRef,
    ReadObject,
    TenantSpec,
    mount_gateway_spaces,
)
from repro.obs import (
    ConservationAuditor,
    EnergyConservationError,
    EnergyLedger,
    EnergyRow,
    RequestTracer,
    tenant_account,
)
from repro.power import PowerMeter
from repro.sim import Simulator
from repro.units import SimSeconds, Watts
from repro.workload import MB

TENANT = TenantSpec(name="t0", weight=1.0, slo_seconds=600.0, max_queue_depth=64)


def row(account, watts, disk_id="", bucket="overhead", trace_id=-1):
    return EnergyRow(account, disk_id, bucket, trace_id, Watts(watts))


class FakeScope:
    """Stand-in for a TraceScope: just the ``owner()`` contract."""

    def __init__(self, owner):
        self._owner = owner

    def owner(self):
        return self._owner


class TestLedgerArithmetic:
    def test_step_function_integration(self):
        """Intervals close at the *previous* sample's watts — the same
        step-function semantics TimeSeries integrates."""
        ledger = EnergyLedger()
        ledger.record_sample(0.0, [row("tenant:a", 10.0)])
        ledger.record_sample(2.0, [row("tenant:a", 99.0)])
        assert ledger.accounts == {"tenant:a": 20.0}
        ledger.finalize(5.0)
        assert ledger.accounts == {"tenant:a": 20.0 + 3 * 99.0}

    def test_finalize_is_idempotent(self):
        ledger = EnergyLedger()
        ledger.record_sample(0.0, [row("idle", 4.0)])
        ledger.finalize(10.0)
        ledger.finalize(10.0)
        ledger.finalize(7.0)  # never rolls backwards
        assert ledger.accounts == {"idle": 40.0}

    def test_disk_books_and_request_charges(self):
        ledger = EnergyLedger()
        rows = [
            row("tenant:a", 8.0, disk_id="disk0", bucket="active", trace_id=7),
            row("idle", 5.0, disk_id="disk1", bucket="idle"),
            row("overhead", 3.0),
        ]
        ledger.record_sample(0.0, rows)
        ledger.finalize(2.0)
        assert ledger.disks["disk0"].active == 16.0
        assert ledger.disks["disk1"].idle == 10.0
        assert ledger.requests == {7: 16.0}
        assert ledger.attributed_joules() == pytest.approx(32.0)

    def test_window_queries_are_exact(self):
        """Cumulative energy is piecewise-linear, so interpolated
        window queries are exact, including mid-interval bounds."""
        ledger = EnergyLedger()
        ledger.record_sample(0.0, [row("tenant:a", 10.0)])
        ledger.record_sample(4.0, [row("tenant:a", 2.0)])
        ledger.finalize(8.0)
        assert ledger.window(0.0, 4.0) == {"tenant:a": pytest.approx(40.0)}
        assert ledger.window(1.0, 3.0) == {"tenant:a": pytest.approx(20.0)}
        assert ledger.window(3.0, 5.0) == {"tenant:a": pytest.approx(12.0)}
        # Windows partition: adjacent windows sum to the containing one.
        full = ledger.window(0.0, 8.0)["tenant:a"]
        split = (
            ledger.window(0.0, 3.5)["tenant:a"]
            + ledger.window(3.5, 8.0)["tenant:a"]
        )
        assert split == pytest.approx(full)

    def test_windowed_series_covers_the_books(self):
        ledger = EnergyLedger()
        ledger.record_sample(0.0, [row("tenant:a", 3.0), row("overhead", 1.0)])
        ledger.record_sample(2.0, [row("tenant:a", 5.0), row("overhead", 1.0)])
        ledger.finalize(5.0)
        series = ledger.windowed_series(SimSeconds(2.0))
        assert [w["t0"] for w in series] == [0.0, 2.0, 4.0]
        total = sum(sum(w["accounts"].values()) for w in series)
        assert total == pytest.approx(float(ledger.attributed_joules()))

    def test_tier_aggregation(self):
        ledger = EnergyLedger()
        ledger.set_tier("disk0", "hot")
        ledger.record_sample(
            0.0,
            [
                row("tenant:a", 6.0, disk_id="disk0", bucket="active", trace_id=1),
                row("idle", 4.0, disk_id="disk1", bucket="standby"),
            ],
        )
        ledger.finalize(1.0)
        tiers = ledger.tier_joules()
        assert tiers["hot"]["active"] == pytest.approx(6.0)
        # Unclassified disks fall into the "default" tier.
        assert tiers["default"]["standby"] == pytest.approx(4.0)

    def test_spin_up_blame_extracts_owner(self):
        ledger = EnergyLedger()
        ledger.on_spin_up("disk3", 1.25, FakeScope(("t0", 42)))
        ledger.on_spin_up("disk4", 2.5, FakeScope(None))
        assert ledger.blames[0].account == "tenant:t0"
        assert ledger.blames[0].trace_id == 42
        assert ledger.blames[0].time == 1.25
        assert ledger.blames[1].account == "system"
        assert ledger.blames[1].trace_id == -1

    def test_export_is_canonical_json(self):
        ledger = EnergyLedger()
        ledger.record_sample(0.0, [row("tenant:a", 1.0)])
        ledger.finalize(1.0)
        text = ledger.to_json()
        assert text == json.dumps(
            ledger.to_dict(), sort_keys=True, separators=(",", ":")
        )
        assert json.loads(text)["accounts"] == {"tenant:a": 1.0}

    def test_tenant_account_names(self):
        assert tenant_account("alice") == "tenant:alice"
        assert tenant_account(None) == "system"


class TestConservationAuditor:
    def test_violation_raises(self):
        class ConstantMeter:
            def energy_joules(self, end_time=None):
                return 100.0

        ledger = EnergyLedger()
        ledger.record_sample(0.0, [row("tenant:a", 1.0)])
        auditor = ConservationAuditor(ConstantMeter(), ledger)
        with pytest.raises(EnergyConservationError):
            auditor.assert_conserved(1.0)

    def test_identity_on_synthetic_meter(self):
        class ConstantMeter:
            def energy_joules(self, end_time=None):
                return 30.0

        ledger = EnergyLedger()
        ledger.record_sample(0.0, [row("tenant:a", 2.0), row("overhead", 1.0)])
        auditor = ConservationAuditor(ConstantMeter(), ledger)
        report = auditor.assert_conserved(10.0)
        assert report["conserved"]
        assert report["residual"] == pytest.approx(0.0, abs=1e-9)


def build_metered(seed=13, **config_kwargs):
    """A traced deployment with the ledger armed, gateway attached."""
    tracer = RequestTracer()
    dep = build_deployment(config=DeploymentConfig(seed=seed), tracer=tracer)
    dep.settle(15.0)
    objects, spaces = mount_gateway_spaces(dep, 64 * MB)
    for disk_id in sorted(dep.disks):
        dep.disks[disk_id].spin_down()
    ledger = EnergyLedger()
    meter = PowerMeter(dep, ledger=ledger)
    meter.start()
    gateway = Gateway(
        dep.sim, (TENANT,), GatewayConfig(scheduler="batch", **config_kwargs)
    )
    gateway.attach(objects, spaces, dep.disks, host_of=dep.host_of_disk)
    gateway.start()
    return dep, gateway, objects, ledger, meter


def series_integral(series, end):
    """Exact step-function integral of a TimeSeries up to ``end``."""
    total = 0.0
    for i, t0 in enumerate(series.times):
        t1 = series.times[i + 1] if i + 1 < len(series.times) else end
        total += series.values[i] * max(0.0, min(t1, end) - t0)
    return total


def drain(dep, gateway, cap=300.0):
    deadline = dep.sim.now + cap
    dep.sim.run(until=dep.sim.now + 1.0)
    while not gateway.drained() and dep.sim.now < deadline:
        dep.sim.run(until=dep.sim.now + 5.0)
    assert gateway.drained(), "gateway failed to drain"


def test_clean_run_conservation_and_tenant_charges():
    dep, gateway, objects, ledger, meter = build_metered()
    target = objects[0]

    def burst():
        for i in range(4):
            gateway.submit(
                ReadObject("t0", ObjectRef(target.space_id, i * MB, 1 * MB))
            )

    dep.sim.call_in(0.0, burst)
    drain(dep, gateway)
    report = ConservationAuditor(meter, ledger).assert_conserved(dep.sim.now)
    assert report["wall_joules"] > 0.0
    accounts = ledger.account_joules()
    # The burst's spin-up + transfer joules land on the tenant book.
    assert accounts.get("tenant:t0", 0.0) > 0.0
    assert accounts["idle"] > 0.0 and accounts["overhead"] > 0.0
    # Every spin-up the traffic caused is blamed on the causing trace.
    assert ledger.blames
    assert all(b.account == "tenant:t0" for b in ledger.blames)
    assert all(b.trace_id >= 0 for b in ledger.blames)


def test_spin_up_blame_carries_exact_time():
    """Blame events fire from the disk's spin-up transition itself, so
    they carry the exact sim time — not the next 1 Hz sample boundary."""
    dep, gateway, objects, ledger, meter = build_metered()
    target = objects[0]
    dep.sim.call_in(
        0.333,
        lambda: gateway.submit(
            ReadObject("t0", ObjectRef(target.space_id, 0, 1 * MB))
        ),
    )
    drain(dep, gateway)
    assert ledger.blames
    blame = ledger.blames[0]
    # The surge started when the request reached the disk, strictly
    # between meter samples (which land on whole seconds here).
    assert blame.time > 0.333
    assert blame.time != int(blame.time)


def test_mid_batch_crash_remount_conservation():
    """The hard case from the trace suite, now for joules: the endpoint
    dies mid-batch, the ClientLib remounts and retries, stale scopes
    stamp nothing — and the books must still sum to the meter."""
    dep, gateway, objects, ledger, meter = build_metered()
    target = objects[0]
    host = dep.host_of_disk(target.disk_id)
    assert host is not None

    def burst():
        for i in range(6):
            gateway.submit(
                ReadObject("t0", ObjectRef(target.space_id, i * MB, 1 * MB))
            )

    dep.sim.call_in(0.0, burst)
    dep.sim.run(until=dep.sim.now + 8.05)
    assert gateway.outstanding() > 0, "crash must land mid-batch"
    dep.crash_host(host)
    drain(dep, gateway)

    assert gateway.stats.completed == 6
    report = ConservationAuditor(meter, ledger).assert_conserved(dep.sim.now)
    assert report["conserved"]
    # The identity also holds over sub-windows straddling the crash:
    # the ledger window must match the step-integral of the very series
    # the meter sampled.  (``meter.energy_joules`` itself is only exact
    # at/after the last sample, so integrate the series directly.)
    mid = ledger.checkpoints[len(ledger.checkpoints) // 2][0]
    window = ledger.window(0.0, mid)
    assert sum(window.values()) == pytest.approx(
        series_integral(meter.series, mid), rel=1e-9
    )
    # Retried work re-stamped under live scopes still bills the tenant.
    assert ledger.account_joules().get("tenant:t0", 0.0) > 0.0


def test_run_point_summaries_conserve():
    summary = gateway_slo.run_point("batch", seed=11, duration=10.0, energy=True)
    assert summary["energy"]["identity"]["conserved"], summary["energy"]["identity"]

    summary = tiering_staging.run_point(
        "staged",
        seed=23,
        num_writes=40,
        num_cold_reads=8,
        write_seconds=120.0,
        total_seconds=220.0,
        energy=True,
    )
    identity = summary["energy"]["identity"]
    assert identity["conserved"], identity
    # Migration I/O bills the internal migration tenant, not users, and
    # the tier classification splits the books hot vs cold.
    accounts = summary["energy"]["accounts"]
    assert accounts.get("tenant:migration", 0.0) > 0.0
    tiers = summary["energy"]["tiers"]
    assert set(tiers) == {"cold", "hot"}


def test_double_run_energy_exports_are_byte_identical():
    exports = []
    for _ in range(2):
        summary = gateway_slo.run_point("batch", seed=11, duration=10.0, energy=True)
        exports.append(
            json.dumps(
                summary["energy"]["export"], sort_keys=True, separators=(",", ":")
            )
        )
    assert exports[0] == exports[1], "energy export differs across replays"
    assert exports[0], "export was empty"


def test_meter_tracks_relay_flips_by_subscription():
    """Satellite regression: the meter mirrors relay state through the
    relay bank's listeners, not by re-deriving the gating map from disk
    ids on every sample."""
    dep = build_deployment(config=DeploymentConfig(seed=3))
    meter = PowerMeter(dep)
    assert meter.fabric_model.powered["disk0"] is True
    dep.relays.open_relay("disk0")
    # The flip lands immediately — no sample needed in between.
    assert meter.fabric_model.powered["disk0"] is False
    assert meter.fabric_model.powered["bridge0"] is False
    dep.relays.close_relay("disk0")
    assert meter.fabric_model.powered["disk0"] is True
    # A silent mutation that bypasses the bank's notify hook is NOT
    # seen: state flows through the subscription, proving the old
    # per-sample resync loop is gone.
    dep.relays.closed["disk0"] = False
    meter.instantaneous_watts()
    assert meter.fabric_model.powered["disk0"] is True


def test_unowned_disk_activity_books_to_system():
    """Direct disk I/O outside any trace scope is owned by nobody; its
    active watts must land on the ``system`` account, never a tenant."""
    sim = Simulator()
    disk = SimulatedDisk(sim, "disk0")
    ledger = EnergyLedger()
    disk.add_spin_up_listener(ledger.on_spin_up)

    def io():
        # A long transfer so 1 Hz samples land inside the busy window.
        yield disk.submit(IoRequest(offset=0, size=256 * MB, is_read=True))

    rows_seen = []

    def sample():
        state = disk.states.state.value
        owner = disk.busy_owner
        rows_seen.append((sim.now, state, owner))

    for t in range(12):
        sim.call_in(float(t), sample)
    sim.call_in(0.5, lambda: sim.process(io()))
    sim.run(until=12.0)
    active = [r for r in rows_seen if r[1] == "active"]
    assert active, "transfer never observed active"
    assert all(owner is None for (_, _, owner) in active)
    assert ledger.blames == []  # disk started spinning; no surge
