"""Independent reference implementation of max-min fair allocation.

This is the correctness oracle for the optimized incremental allocator
in :mod:`repro.fabric.bandwidth`.  It deliberately shares **no** code
with the implementation under test:

* paths are walked here with the fabric's public primitives
  (``active_upstream`` + node kinds), never through the epoch-cached
  ``active_path``/``trace_up``, so a stale path cache cannot leak into
  the oracle;
* progressive filling is the textbook O(rounds × constraints × flows)
  formulation: every round resums every constraint and freezes the
  members of every binding one.

The only intentional coupling is the shared tie tolerance
(``TIE_REL_TOL``): both implementations must classify "these
constraints bind at the same water level" identically or randomized
comparisons would diverge on exact ties by construction.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.fabric.bandwidth import TIE_REL_TOL, Flow
from repro.fabric.topology import Fabric

__all__ = ["reference_allocate", "reference_path"]


def reference_path(fabric: Fabric, disk_id: str) -> List[str]:
    """Walk disk -> host port using only public single-step primitives."""
    walk = [disk_id]
    node = fabric.node(disk_id)
    if node.failed:
        return walk
    seen = {disk_id}
    current = disk_id
    while True:
        nxt = fabric.active_upstream(current)
        if nxt is None:
            return walk
        if nxt in seen:
            raise RuntimeError(f"cycle through {nxt!r}")
        seen.add(nxt)
        walk.append(nxt)
        nxt_node = fabric.node(nxt)
        if nxt_node.failed or nxt_node.kind.value == "host_port":
            return walk
        current = nxt


def reference_allocate(
    fabric: Fabric,
    flows: Sequence[Flow],
    per_direction_capacity: float,
    duplex_capacity: float,
    root_iops_limit: float | None,
) -> Dict[str, float]:
    """Textbook progressive filling; returns flow_id -> bytes/s."""
    if not flows:
        return {}

    # (capacity, members) with members as {flow index: weight}.
    constraints: List[Tuple[float, Dict[int, float]]] = []
    directional: Dict[Tuple[str, str, bool], int] = {}
    duplex: Dict[Tuple[str, str], int] = {}
    root: Dict[str, int] = {}

    def member_of(table: Dict, key, capacity: float, index: int, weight: float) -> None:
        cidx = table.get(key)
        if cidx is None:
            cidx = len(constraints)
            constraints.append((capacity, {}))
            table[key] = cidx
        constraints[cidx][1][index] = weight

    for index, flow in enumerate(flows):
        walk = reference_path(fabric, flow.disk_id)
        if len(walk) < 2 or fabric.node(walk[-1]).kind.value != "host_port":
            raise ValueError(f"disk {flow.disk_id!r} is not attached to any host")
        for child, parent in zip(walk, walk[1:]):
            member_of(
                directional,
                (child, parent, flow.is_read),
                per_direction_capacity,
                index,
                1.0,
            )
            member_of(duplex, (child, parent), duplex_capacity, index, 1.0)
        if root_iops_limit is not None:
            member_of(root, walk[-1], root_iops_limit, index, 1.0 / flow.io_size)
        # Demand cap as a single-member constraint.
        constraints.append((flow.demand, {index: 1.0}))

    n = len(flows)
    rates = [0.0] * n
    frozen = [False] * n
    level = 0.0
    while not all(frozen):
        best = float("inf")
        for capacity, members in constraints:
            used = sum(w * rates[i] for i, w in members.items() if frozen[i])
            weight = sum(w for i, w in members.items() if not frozen[i])
            if weight <= 0.0:
                continue
            bound = (capacity - used) / weight
            if bound < best:
                best = bound
        if best == float("inf"):
            break
        if best > level:
            level = best
        scale = abs(best)
        cutoff = best + TIE_REL_TOL * (scale if scale > 1.0 else 1.0)
        progressed = False
        for capacity, members in constraints:
            used = sum(w * rates[i] for i, w in members.items() if frozen[i])
            weight = sum(w for i, w in members.items() if not frozen[i])
            if weight <= 0.0:
                continue
            if (capacity - used) / weight <= cutoff:
                for i in members:
                    if not frozen[i]:
                        frozen[i] = True
                        rates[i] = level
                        progressed = True
        if not progressed:
            break
    return {flow.flow_id: rates[i] for i, flow in enumerate(flows)}
