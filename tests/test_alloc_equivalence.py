"""Property tests: optimized allocator vs independent reference oracle.

The incremental allocator (epoch-cached skeletons + lazy-heap
progressive filling) must match the test-tree reference implementation
(``tests/reference_alloc.py``) to 1e-9 on randomized topologies, flow
sets and switch states — and a topology change mid-run must never be
served a stale cache.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.fabric import (
    AllocationSession,
    BandwidthModel,
    Flow,
    dual_tree_fabric,
    prototype_fabric,
    rack_fabric,
    ring_fabric,
)
from tests.reference_alloc import reference_allocate

NUM_RANDOM_CASES = 55


def close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def build_random_case(seed: int):
    """A seeded random (fabric, flows) pair with random switch states."""
    rng = random.Random(seed)
    kind = rng.choice(["ring", "ring", "dual", "rack"])
    if kind == "ring":
        hosts = rng.choice([2, 3, 4, 6])
        per_leaf = rng.choice([1, 2])
        fabric = ring_fabric(num_hosts=hosts, disks_per_leaf=per_leaf, fan_in=4)
    elif kind == "dual":
        fabric = dual_tree_fabric(
            num_disks=rng.choice([3, 6, 10]), num_hosts=rng.choice([2, 4])
        )
    else:
        fabric = rack_fabric(rng.choice([1, 2]))

    switches = fabric.switches
    for switch in rng.sample(switches, rng.randint(0, len(switches))):
        switch.turn()

    disks = sorted(disk.node_id for disk in fabric.disks)
    count = rng.randint(1, len(disks))
    chosen = rng.sample(disks, count)
    tie_levels = [rng.uniform(10e6, 200e6) for _ in range(4)]
    flows = []
    for i, disk_id in enumerate(chosen):
        if rng.random() < 0.35:
            demand = rng.choice(tie_levels)  # force exact ties
        else:
            demand = rng.uniform(1e6, 400e6)
        flows.append(
            Flow(
                flow_id=f"f{i}",
                disk_id=disk_id,
                demand=demand,
                is_read=rng.random() < 0.5,
                io_size=rng.choice([4 * 1024, 4 * 1024 * 1024]),
            )
        )
    return fabric, flows


def assert_matches_reference(fabric, model: BandwidthModel, flows) -> None:
    got = model.allocate(flows).rates
    expected = reference_allocate(
        fabric,
        flows,
        model.per_direction_capacity,
        model.duplex_capacity,
        model.root_iops_limit,
    )
    assert set(got) == set(expected)
    for flow_id in expected:
        assert close(got[flow_id], expected[flow_id]), (
            f"{flow_id}: optimized {got[flow_id]!r} != reference "
            f"{expected[flow_id]!r}"
        )


@pytest.mark.parametrize("seed", range(NUM_RANDOM_CASES))
def test_randomized_topologies_match_reference(seed):
    fabric, flows = build_random_case(seed)
    model = BandwidthModel(fabric)
    assert_matches_reference(fabric, model, flows)
    # Second call exercises the warm skeleton cache on the same epoch.
    assert_matches_reference(fabric, model, flows)
    # The retained naive baseline agrees too.
    naive = model.allocate_naive(flows).rates
    opt = model.allocate(flows).rates
    for flow_id in opt:
        assert close(opt[flow_id], naive[flow_id])


@pytest.mark.parametrize("seed", range(0, NUM_RANDOM_CASES, 7))
def test_switch_turn_mid_run_invalidates_caches(seed):
    """A switch turn between allocations must change the served result
    to the fresh-topology answer — a stale cache is never served."""
    fabric, flows = build_random_case(seed)
    model = BandwidthModel(fabric)
    model.allocate(flows)  # warm every cache on the current epoch

    rng = random.Random(1000 + seed)
    switch = rng.choice(fabric.switches)
    switch.turn()
    assert_matches_reference(fabric, model, flows)
    switch.turn()
    assert_matches_reference(fabric, model, flows)


def test_switch_turn_changes_allocation():
    """Concrete stale-cache scenario: steering a second leaf group onto
    an occupied root port halves those disks' share."""
    fabric = prototype_fabric()
    model = BandwidthModel(fabric)
    disks = sorted(disk.node_id for disk in fabric.disks)
    flows = [Flow(f"f{d}", d, 1e9, True) for d in disks]
    before = model.allocate(flows)
    # 16 unlimited readers over 4 root ports: 75 MB/s each.
    assert all(close(rate, 75e6) for rate in before.rates.values())

    # Steer leaf group 1 from roothub1 onto roothub2: port 2 now carries
    # 6 disks (50 MB/s each) while port 1 drops to 2 disks (150 MB/s).
    switch = next(s for s in fabric.switches if s.node_id == "leafsw1")
    switch.turn()
    after = model.allocate(flows)
    assert sorted(set(round(r) for r in after.rates.values())) == [
        50_000_000,
        75_000_000,
        150_000_000,
    ]
    assert_matches_reference(fabric, model, flows)


def test_failure_and_repair_invalidate_path_cache():
    fabric = prototype_fabric()
    model = BandwidthModel(fabric)
    disks = sorted(disk.node_id for disk in fabric.disks)
    flows = [Flow(f"f{d}", d, 1e9, True) for d in disks]
    model.allocate(flows)

    epoch = fabric.epoch
    fabric.node("roothub0").fail()
    assert fabric.epoch > epoch
    # Disks behind the failed hub are now detached: allocate must see it.
    with pytest.raises(ValueError):
        model.allocate(flows)

    fabric.node("roothub0").repair()
    assert_matches_reference(fabric, model, flows)


def test_epoch_bumps_on_topology_mutations():
    fabric = prototype_fabric()
    epoch = fabric.epoch

    fabric.switches[0].turn()
    assert fabric.epoch > epoch
    epoch = fabric.epoch

    # Setting a switch to the state it is already in is not a change.
    fabric.switches[0].state = fabric.switches[0].state
    assert fabric.epoch == epoch

    fabric.node("disk0").fail()
    assert fabric.epoch > epoch
    epoch = fabric.epoch
    fabric.node("disk0").repair()
    assert fabric.epoch > epoch


def test_active_path_is_cached_within_epoch():
    fabric = prototype_fabric()
    first = fabric.active_path("disk0")
    assert first is fabric.active_path("disk0")  # same cached tuple
    fabric.switches[0].turn()
    assert fabric.active_path("disk0") is not first


class TestAllocationSession:
    def test_matches_batch_allocate_under_churn(self):
        fabric = prototype_fabric()
        model = BandwidthModel(fabric)
        disks = sorted(disk.node_id for disk in fabric.disks)
        rng = random.Random(99)
        session = AllocationSession(model)
        live = {}
        for step in range(40):
            if live and rng.random() < 0.4:
                flow_id = rng.choice(sorted(live))
                session.remove_flow(flow_id)
                del live[flow_id]
            else:
                flow = Flow(
                    flow_id=f"s{step}",
                    disk_id=rng.choice(disks),
                    demand=rng.uniform(1e6, 400e6),
                    is_read=rng.random() < 0.5,
                )
                session.add_flow(flow)
                live[flow.flow_id] = flow
            got = session.allocate().rates
            expected = model.allocate(list(live.values())).rates
            assert set(got) == set(expected)
            for flow_id in expected:
                assert close(got[flow_id], expected[flow_id])

    def test_resyncs_after_switch_turn(self):
        fabric = prototype_fabric()
        model = BandwidthModel(fabric)
        disks = sorted(disk.node_id for disk in fabric.disks)
        flows = [Flow(f"f{d}", d, 1e9, True) for d in disks]
        session = model.session(flows)
        assert all(close(r, 75e6) for r in session.allocate().rates.values())

        next(s for s in fabric.switches if s.node_id == "leafsw1").turn()
        got = session.allocate().rates
        expected = reference_allocate(
            fabric, flows, model.per_direction_capacity,
            model.duplex_capacity, model.root_iops_limit,
        )
        for flow_id in expected:
            assert close(got[flow_id], expected[flow_id])

    def test_duplicate_and_missing_flow_ids(self):
        fabric = prototype_fabric()
        session = BandwidthModel(fabric).session()
        session.add_flow(Flow("f1", "disk0", 1e6, True))
        with pytest.raises(ValueError):
            session.add_flow(Flow("f1", "disk1", 1e6, True))
        with pytest.raises(KeyError):
            session.remove_flow("nope")
        assert len(session) == 1
