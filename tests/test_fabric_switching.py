"""Tests for the Algorithm 1 planner and fabric validation."""

import pytest

from repro.fabric import (
    FabricError,
    SwitchConflict,
    dual_tree_fabric,
    execute_plan,
    plan_switches,
    prototype_fabric,
    ring_fabric,
    validate_fabric,
)


class TestPlanSwitches:
    def test_noop_command(self):
        f = prototype_fabric()
        host = f.attached_host("disk0")
        plan = plan_switches(f, [("disk0", host)])
        assert plan.is_noop

    def test_empty_command(self):
        f = prototype_fabric()
        assert plan_switches(f, []).is_noop

    def test_single_disk_move(self):
        f = prototype_fabric()
        # disk0 can move alone to host2: its alternate leaf hub's switch
        # already points at roothub2, so only the disk switch turns.
        plan = plan_switches(f, [("disk0", "host2")])
        assert plan.turns
        execute_plan(f, plan)
        assert f.attached_host("disk0") == "host2"

    def test_move_preserves_other_disks(self):
        f = prototype_fabric()
        before = f.attachment_map()
        execute_plan(f, plan_switches(f, [("disk0", "host2")]))
        after = f.attachment_map()
        for disk_id, host in before.items():
            if disk_id != "disk0":
                assert after[disk_id] == host, disk_id

    def test_whole_group_move_via_leaf_switch(self):
        """Moving both disks of a leaf group together may flip the shared
        leaf switch, because both disks are part of the command."""
        f = prototype_fabric()
        # disks 0 and 1 share leaf hub 0 -> primary host0, alternate host1.
        plan = plan_switches(f, [("disk0", "host1"), ("disk1", "host1")])
        execute_plan(f, plan)
        assert f.attached_host("disk0") == "host1"
        assert f.attached_host("disk1") == "host1"

    def test_conflicting_command_raises_with_victims(self):
        f = prototype_fabric()
        # disk0's only path to host1 flips leafsw0, which disk1 (not in
        # the command) pins: Algorithm 1 line 17 reports the conflict and
        # names the collateral disk so the Master can extend the command.
        with pytest.raises(SwitchConflict) as excinfo:
            plan_switches(f, [("disk0", "host1")])
        assert excinfo.value.victims == ("disk1",)

    def test_self_conflicting_command(self):
        f = prototype_fabric()
        # disk0 and disk1 share both their leaf switch and (alternate)
        # leaf hub; sending them to two different hosts that both require
        # the shared leaf switch in different states must conflict.
        with pytest.raises((SwitchConflict, FabricError)):
            plan = plan_switches(f, [("disk0", "host1"), ("disk1", "host0")])
            # If planning found independent paths, executing is fine and
            # the scenario is not self-conflicting; force failure only
            # when the attachments don't both hold.
            execute_plan(f, plan)
            assert f.attached_host("disk0") == "host1"
            assert f.attached_host("disk1") == "host0"
            raise FabricError("independent paths existed (acceptable)")

    def test_unknown_disk_rejected(self):
        f = prototype_fabric()
        with pytest.raises(FabricError):
            plan_switches(f, [("nope", "host0")])

    def test_non_disk_rejected(self):
        f = prototype_fabric()
        with pytest.raises(FabricError):
            plan_switches(f, [("leafhub0", "host0")])

    def test_unknown_host_rejected(self):
        f = prototype_fabric()
        with pytest.raises(FabricError):
            plan_switches(f, [("disk0", "host9")])

    def test_duplicate_disk_rejected(self):
        f = prototype_fabric()
        with pytest.raises(FabricError):
            plan_switches(f, [("disk0", "host0"), ("disk0", "host1")])

    def test_failover_all_disks_of_failed_host(self):
        """Host failure: every disk of host0 finds a new home (§IV-E)."""
        f = prototype_fabric()
        victims = [d for d, h in f.attachment_map().items() if h == "host0"]
        assert len(victims) == 4
        # Move each disk individually to some other reachable host,
        # respecting conflicts by choosing per-disk targets greedily.
        for disk_id in victims:
            moved = False
            for target in f.reachable_hosts(disk_id):
                if target == "host0":
                    continue
                try:
                    execute_plan(f, plan_switches(f, [(disk_id, target)]))
                    moved = True
                    break
                except SwitchConflict:
                    continue
            assert moved, f"no conflict-free target for {disk_id}"
        attachment = f.attachment_map()
        assert all(h != "host0" for h in attachment.values())
        assert all(h is not None for h in attachment.values())

    def test_plan_on_dual_tree_is_conflict_free(self):
        f = dual_tree_fabric(num_disks=8, num_hosts=2)
        pairs = [(f"disk{i}", "host1") for i in range(8)]
        plan = plan_switches(f, pairs)
        execute_plan(f, plan)
        assert all(h == "host1" for h in f.attachment_map().values())

    def test_detached_disks_pin_nothing(self):
        f = prototype_fabric()
        f.node("leafhub0").fail()  # disks 0,1 now detached
        # Their leaf switch state must not block other commands.
        plan = plan_switches(f, [("disk4", "host0")])
        execute_plan(f, plan)
        assert f.attached_host("disk4") == "host0"


class TestValidate:
    def test_prototype_validates(self):
        report = validate_fabric(prototype_fabric())
        assert report.ok, report.errors
        assert report.max_hub_depth == 2
        assert report.min_reachable_hosts == 4

    def test_dual_tree_validates(self):
        report = validate_fabric(dual_tree_fabric(num_disks=16, num_hosts=2))
        assert report.ok, report.errors

    def test_intel_quirk_warning_on_prototype(self):
        """§V-B: the Intel xHCI driver only sees ~15 devices per root."""
        report = validate_fabric(prototype_fabric(), enforce_intel_quirk=True)
        assert report.ok  # still within the USB-spec 127
        assert report.warnings  # but flagged for the Intel quirk

    def test_empty_fabric_fails(self):
        from repro.fabric import Fabric

        report = validate_fabric(Fabric())
        assert not report.ok

    def test_unreachable_disk_detected(self):
        from repro.fabric import Bridge, DiskNode, Fabric, HostPort, Hub

        f = Fabric()
        f.add(HostPort("p", host_id="h"))
        f.add(Hub("hub"))
        f.connect("hub", "p")
        f.add(DiskNode("d"))
        f.add(Bridge("b"))
        f.connect("d", "b")  # bridge never wired upward
        report = validate_fabric(f)
        assert not report.ok
        assert any("reaches no host" in e for e in report.errors)

    def test_single_path_disk_flagged(self):
        from repro.fabric import Bridge, DiskNode, Fabric, HostPort, Hub

        f = Fabric()
        f.add(HostPort("p", host_id="h"))
        f.add(Hub("hub"))
        f.connect("hub", "p")
        f.add(DiskNode("d"))
        f.add(Bridge("b"))
        f.connect("d", "b")
        f.connect("b", "hub")
        report = validate_fabric(f, require_full_reachability=False)
        assert not report.ok
        assert any("failover" in e for e in report.errors)

    def test_hub_tier_limit(self):
        from repro.fabric import Bridge, DiskNode, Fabric, HostPort, Hub

        f = Fabric()
        f.add(HostPort("p", host_id="h"))
        previous = "p"
        for i in range(6):  # 6 hub tiers > USB's 5
            f.add(Hub(f"hub{i}"))
            f.connect(f"hub{i}", previous)
            previous = f"hub{i}"
        f.add(DiskNode("d"))
        f.add(Bridge("b"))
        f.connect("d", "b")
        f.connect("b", previous)
        report = validate_fabric(f, require_full_reachability=False)
        assert any("hub tiers" in e for e in report.errors)

    def test_device_census(self):
        report = validate_fabric(prototype_fabric())
        # Each port can see all 16 bridges plus its root hub and the 4
        # leaf hubs that can route to it: 21 devices worst case — over
        # the Intel xHCI quirk's 15, matching the paper's observation
        # that only up to ~12 disks per host were usable.
        assert all(v == 21 for v in report.worst_case_devices_per_port.values())
