"""Sim-process protocol analyzer: generator detection and rule edges.

The fixture suite (``test_analysis_lint.py``) proves each PROC rule
fires/stays silent on its dedicated fixture pair; these tests pin the
generator-detection heuristic and the edge cases each rule must get
right (finally-guarded releases, self-receivers, re-raise shapes).
"""

import ast
import textwrap

from repro.analysis import Linter
from repro.analysis.proc import is_sim_generator


def lint_source(tmp_path, source):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return Linter().lint_paths([str(path)])


def rule_ids(report):
    return sorted({f.rule_id for f in report.findings})


def first_function(source):
    tree = ast.parse(textwrap.dedent(source))
    return next(n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef))


# -- generator detection ----------------------------------------------------


def test_yielding_event_factory_is_sim_generator():
    func = first_function(
        """
        def proc(sim):
            yield sim.timeout(1.0)
        """
    )
    assert is_sim_generator(func)


def test_event_return_annotation_is_sim_generator():
    func = first_function(
        """
        def proc(queue) -> "ProcessGen":
            yield queue.pop()
        """
    )
    assert is_sim_generator(func)


def test_plain_generator_is_not_sim_generator():
    func = first_function(
        """
        def numbers(n):
            for i in range(n):
                yield i
        """
    )
    assert not is_sim_generator(func)


def test_non_generator_is_not_sim_generator():
    func = first_function(
        """
        def helper(sim):
            return sim.timeout(1.0)
        """
    )
    assert not is_sim_generator(func)


def test_nested_generator_does_not_taint_enclosing_function():
    # The inner sim process yields; the outer function does not.
    func = first_function(
        """
        def outer(sim):
            def inner():
                yield sim.timeout(1.0)
            return inner
        """
    )
    assert not is_sim_generator(func)


# -- PROC001: acquire/release pairing ---------------------------------------


def test_release_before_any_yield_is_clean(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def proc(sim, resource):
            grant = resource.request()
            resource.release(grant)
            yield sim.timeout(1.0)
        """,
    )
    assert report.ok, report.render()


def test_release_in_finally_spanning_yield_is_clean(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def proc(sim, resource):
            grant = resource.request()
            try:
                yield sim.timeout(1.0)
            finally:
                resource.release(grant)
        """,
    )
    assert report.ok, report.render()


def test_unreleased_acquire_flagged_once(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def proc(sim, resource):
            resource.request()
            yield sim.timeout(1.0)
        """,
    )
    assert rule_ids(report) == ["PROC001"]
    assert len(report.findings) == 1


# -- PROC002: blocking calls ------------------------------------------------


def test_wallclock_sleep_flagged_but_sim_timeout_clean(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import time


        def proc(sim):
            time.sleep(0.1)
            yield sim.timeout(1.0)
        """,
    )
    assert rule_ids(report) == ["PROC002"]


def test_self_receiver_methods_are_not_blocking(tmp_path):
    # ``self.read_text()`` is a model method, not pathlib I/O.
    report = lint_source(
        tmp_path,
        """
        class Node:
            def proc(self, sim):
                self.read_text()
                yield sim.timeout(1.0)

            def read_text(self):
                return ""
        """,
    )
    assert report.ok, report.render()


# -- PROC004: broad handlers ------------------------------------------------


def test_base_exception_handler_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def proc(sim):
            try:
                yield sim.timeout(1.0)
            except BaseException:
                return
        """,
    )
    assert rule_ids(report) == ["PROC004"]


def test_named_reraise_counts_as_propagation(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def proc(sim, log):
            try:
                yield sim.timeout(1.0)
            except Exception as exc:
                log.append(str(exc))
                raise exc
        """,
    )
    assert report.ok, report.render()
