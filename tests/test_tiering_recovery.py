"""Tiering crash/remount property test: exactly-once placement.

The contract: crash the host serving an in-flight demotion batch AND
the tiering node itself (soft state dropped, in-flight completions
orphaned) at an adversarial moment, then recover from media scans
alone.  Afterwards every acknowledged object must resolve to exactly
one durable tier — the demotion's data may have landed (duplicate:
cold wins) or not (hot-only: re-stage and owe a fresh demotion), but
never both kept, never neither.  30 seeds vary fabric/USB timing and
the crash instant within the batch's flight window.
"""

from tests.test_gateway import drain
from tests.test_tiering import OBJECT_BYTES, build_tiered, drain_tiering

NUM_OBJECTS = 10
SEEDS = range(1, 31)


def crash_recover_audit(seed):
    """One property-test trial; returns the store's stats for coverage
    aggregation across seeds."""
    dep, gateway, store, orchestrator = build_tiered(seed=seed)
    uids = [f"s{seed}-u{i}" for i in range(NUM_OBJECTS)]

    def ingest():
        for uid in uids:
            store.write(uid, OBJECT_BYTES)

    dep.sim.call_in(0.0, ingest)

    # Step until the orchestrator has a demotion batch in flight.
    deadline = dep.sim.now + 90.0
    while dep.sim.now < deadline and store.inflight_demotions == 0:
        dep.sim.run(until=dep.sim.now + 0.25)
    assert store.inflight_demotions > 0, f"seed {seed}: no demotion started"

    # Seed-dependent crash instant inside the batch's ~8s flight
    # window (the cold disk is mid-spin-up or mid-write).
    jitter = dep.rng.stream("test.crash_jitter").uniform(0.0, 0.5)
    dep.sim.run(until=dep.sim.now + jitter)

    if store.inflight_demotions > 0:
        # Kill the host serving the batch's cold disk at the same
        # instant the tiering node loses its soft state.
        space_id = store.inflight_spaces()[0]
        host = dep.host_of_disk(store._disk_of_space[space_id])
        assert host is not None
        dep.crash_host(host)
    store.drop_soft_state()

    # The orphaned batch still completes on the platter (ClientLib
    # remount absorbs the crash); its commit died with the node.
    drain(dep, gateway)
    assert store.stats.soft_state_drops == 1

    # Rebuild placement from media scans alone.
    scans = []
    dep.sim.call_in(0.0, lambda: scans.extend(store.recover()))
    drain(dep, gateway)
    assert len(scans) > 0, f"seed {seed}: nothing durable to scan"
    assert all(s.failure is None and s.attempts == 1 for s in scans)

    # Exactly-once: every acknowledged object, one durable tier.
    assert sorted(store._index) == sorted(uids), f"seed {seed}: lost objects"
    for uid in uids:
        tiers = store.durable_tiers(uid)
        assert len(tiers) == 1, f"seed {seed}: {uid} durable in {tiers}"
        assert store.residency(uid) == tiers[0]

    # Every object reads back on a single gateway attempt.
    reads = []

    def read_all():
        for uid in uids:
            reads.append(store.read(uid))

    dep.sim.call_in(0.0, read_all)
    drain(dep, gateway)
    assert len(reads) == NUM_OBJECTS
    assert all(r.failure is None and r.attempts == 1 for r in reads)

    # Recovered hot-only objects owe a fresh demotion; the (still
    # running) orchestrator finishes the job.
    drain_tiering(dep, gateway, store)
    assert all(store.durable_tiers(uid) == ["cold"] for uid in uids), (
        f"seed {seed}: objects left un-demoted after recovery"
    )
    orchestrator.stop()
    return store.stats


def test_exactly_once_placement_across_crash_remount_30_seeds():
    duplicates = 0
    hot_only = 0
    for seed in SEEDS:
        stats = crash_recover_audit(seed)
        duplicates += stats.recovered_duplicates
        hot_only += stats.recovered_hot_only
    # The seeds must jointly exercise both recovery resolutions:
    # demotion data landed before the crash (cold wins over the hot
    # twin) and demotion still pending (hot-only re-stage).
    assert duplicates > 0, "no seed produced a cross-tier duplicate"
    assert hot_only > 0, "no seed left a hot-only object to re-stage"
