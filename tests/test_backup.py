"""Tests for the deduplicating backup overlay."""

import pytest

from repro.backup import (
    ArchiveStore,
    BackupService,
    FileVersion,
    chunk_file,
    provision_archive,
    synthetic_dataset,
)
from repro.cluster import build_deployment
from repro.sim import RngRegistry
from repro.workload import MB


@pytest.fixture(scope="module")
def stack():
    dep = build_deployment()
    dep.settle(15.0)
    store = dep.sim.run_until_event(
        dep.sim.process(provision_archive(dep, num_spaces=2, space_bytes=1024 * MB))
    )
    return dep, store


class TestChunking:
    def test_chunk_count_and_sizes(self):
        version = FileVersion("f", 5 * MB + 17, content_seed=1)
        chunks = chunk_file(version, chunk_bytes=1 * MB)
        assert len(chunks) == 6
        assert sum(c.size for c in chunks) == version.size
        assert chunks[-1].size == 17

    def test_chunks_deterministic(self):
        version = FileVersion("f", 3 * MB, content_seed=7)
        assert chunk_file(version) == chunk_file(version)

    def test_edit_changes_fingerprints(self):
        before = chunk_file(FileVersion("f", 3 * MB, content_seed=1))
        after = chunk_file(FileVersion("f", 3 * MB, content_seed=2))
        assert all(a.fingerprint != b.fingerprint for a, b in zip(before, after))

    def test_different_files_do_not_collide(self):
        a = chunk_file(FileVersion("a", 1 * MB, content_seed=1))
        b = chunk_file(FileVersion("b", 1 * MB, content_seed=1))
        assert a[0].fingerprint != b[0].fingerprint

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chunk_file(FileVersion("f", 1 * MB, 0), chunk_bytes=0)


class TestArchiveStore:
    def test_first_snapshot_writes_everything(self, stack):
        dep, store = stack
        files = [FileVersion(f"a{i}", 4 * MB, content_seed=i) for i in range(4)]

        def scenario():
            return (yield from store.snapshot("s-first", files))

        stats = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert stats.chunks_new == stats.chunks_total == 16
        assert stats.unique_bytes == stats.logical_bytes == 16 * MB
        assert stats.dedup_ratio == 1.0

    def test_unchanged_snapshot_is_free(self, stack):
        dep, store = stack
        files = [FileVersion(f"a{i}", 4 * MB, content_seed=i) for i in range(4)]

        def scenario():
            return (yield from store.snapshot("s-repeat", files))

        stats = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert stats.chunks_new == 0
        assert stats.unique_bytes == 0
        assert stats.dedup_ratio == float("inf")

    def test_partial_change_writes_only_delta(self, stack):
        dep, store = stack
        files = [FileVersion(f"a{i}", 4 * MB, content_seed=i) for i in range(4)]
        files[0] = files[0].edited(999)

        def scenario():
            return (yield from store.snapshot("s-delta", files))

        stats = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert stats.chunks_new == 4  # only the edited file's chunks
        assert stats.unique_bytes == 4 * MB

    def test_restore_reads_all_chunks(self, stack):
        dep, store = stack

        def scenario():
            return (yield from store.restore("s-first"))

        result = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert result["bytes_restored"] == 16 * MB
        assert result["chunks_read"] == 16

    def test_restore_subset(self, stack):
        dep, store = stack

        def scenario():
            return (yield from store.restore("s-first", names=["a0"]))

        result = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert result["bytes_restored"] == 4 * MB

    def test_duplicate_snapshot_id_rejected(self, stack):
        dep, store = stack

        def scenario():
            yield from store.snapshot("s-first", [])

        with pytest.raises(ValueError):
            dep.sim.run_until_event(dep.sim.process(scenario()))

    def test_unknown_snapshot_restore(self, stack):
        dep, store = stack

        def scenario():
            yield from store.restore("nope")

        with pytest.raises(KeyError):
            dep.sim.run_until_event(dep.sim.process(scenario()))

    def test_out_of_space(self):
        dep = build_deployment()
        dep.settle(15.0)
        store = dep.sim.run_until_event(
            dep.sim.process(provision_archive(dep, num_spaces=1, space_bytes=8 * MB))
        )
        files = [FileVersion("big", 32 * MB, content_seed=0)]

        def scenario():
            yield from store.snapshot("s", files)

        with pytest.raises(RuntimeError, match="out of space"):
            dep.sim.run_until_event(dep.sim.process(scenario()))


class TestBackupService:
    def test_incremental_rounds_dedup(self):
        dep = build_deployment()
        dep.settle(15.0)
        store = dep.sim.run_until_event(
            dep.sim.process(provision_archive(dep, num_spaces=2, space_bytes=2048 * MB))
        )
        rng = RngRegistry(5)
        service = BackupService(dep, store, rng, change_fraction=0.2)
        service.load_dataset(synthetic_dataset(rng, num_files=20, mean_file_mb=4.0))

        def scenario():
            return (yield from service.run_rounds(3, interval_seconds=60.0))

        rounds = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert len(rounds) == 3
        assert rounds[0].dedup_ratio == 1.0
        # Later rounds write much less than the logical dataset.
        for stats in rounds[1:]:
            assert stats.unique_bytes < 0.6 * stats.logical_bytes

    def test_mutate_fraction(self):
        dep = build_deployment()
        rng = RngRegistry(5)
        store = ArchiveStore.__new__(ArchiveStore)  # not used by mutate
        service = BackupService(dep, store, rng, change_fraction=0.5)
        service.load_dataset(synthetic_dataset(rng, num_files=100))
        changed = service.mutate_dataset()
        assert 25 <= changed <= 75

    def test_invalid_change_fraction(self):
        dep = build_deployment()
        with pytest.raises(ValueError):
            BackupService(dep, None, RngRegistry(1), change_fraction=1.5)
