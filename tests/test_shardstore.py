"""Tests for repro.shardstore: routing, packing, and the packed store.

Property tests pin the no-metadata-DB invariant — ``route()`` must be a
pure function of ``(uid, date)``, stable across interpreter hash seeds,
and spread a synthetic uid population uniformly across shards.  Unit
tests cover the shard buffer's packing arithmetic, and integration
tests drive a :class:`~repro.shardstore.ShardStore` over a real 16-disk
deployment: puts pack into few large flush writes, gets come back as
coalesced sub-block reads, and the small-size experiment point replays
deterministically.
"""

import subprocess
import sys

import pytest

from repro.experiments import shardstore_small_objects
from repro.gateway import ObjectRef, ReadRange
from repro.shardstore import (
    ObjectState,
    RECORD_HEADER_BYTES,
    ShardBuffer,
    ShardCapacityError,
    ShardId,
    ShardLayout,
    ShardPlacement,
    ShardStore,
    ShardStoreConfig,
    ShardStoreError,
    day_number,
    place,
    route,
    stable_hash,
)
from repro.workload import KB, MB

from tests.test_gateway import build_gateway, drain

MiB = 1 << 20
DATE = "2015-06-01"


# -- routing: the pure-function invariant --------------------------------


class TestRouting:
    def test_route_is_deterministic_within_process(self):
        for uid in ("u0", "u1", "user/with/slashes", "日本語"):
            first = route(uid, DATE, 16)
            second = route(uid, DATE, 16)
            assert first == second
            assert first.date == DATE
            assert 0 <= first.index < 16

    def test_route_is_deterministic_across_interpreter_hash_seeds(self):
        """The router must not depend on Python's per-process salted
        ``hash()``: two interpreters with different PYTHONHASHSEED
        values must route an identical uid population identically."""
        script = (
            "from repro.shardstore import route\n"
            "print([route(f'uid-{i}', '2015-06-01', 16).index"
            " for i in range(64)])\n"
        )

        def run(hash_seed):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
                check=True,
            )
            return result.stdout

        assert run("1") == run("2")

    def test_route_spreads_uids_uniformly(self):
        """4000 synthetic uids over 16 shards: every shard gets close
        to its fair 250, with generous tolerance for hash noise."""
        shards_per_day = 16
        population = 4000
        counts = [0] * shards_per_day
        for i in range(population):
            counts[route(f"user-{i}@example", DATE, shards_per_day).index] += 1
        expected = population / shards_per_day
        assert sum(counts) == population
        assert min(counts) > expected * 0.7
        assert max(counts) < expected * 1.3

    def test_route_differs_by_date(self):
        """The date participates in the hash, so one uid's daily
        objects spread over shards instead of hammering one."""
        indices = {
            route("uid-7", f"2015-06-{day:02d}", 16).index
            for day in range(1, 29)
        }
        assert len(indices) > 1

    def test_route_validates_arguments(self):
        with pytest.raises(ValueError):
            route("", DATE, 16)
        with pytest.raises(ValueError):
            route("uid", DATE, 0)

    def test_stable_hash_known_values_are_stable(self):
        # Pinned so any change to the hash function (which would strand
        # every object already placed on media) fails loudly.
        assert stable_hash("") == stable_hash("")
        assert stable_hash("a") != stable_hash("b")
        assert 0 <= stable_hash("anything") < 1 << 64

    def test_day_number_matches_known_ordinal(self):
        assert day_number("2015-06-02") == day_number("2015-06-01") + 1


class TestPlacement:
    LAYOUT = ShardLayout(
        shards_per_day=16,
        shard_capacity_bytes=8 * MiB,
        num_spaces=16,
        slots_per_space=7,
    )

    def test_layout_derived_properties(self):
        assert self.LAYOUT.total_slots == 112
        assert self.LAYOUT.retention_days == 7

    def test_place_is_collision_free_within_retention_window(self):
        """Every shard of every day inside the retention window must
        land on a distinct (space, slot) — otherwise live shards would
        overwrite each other."""
        seen = {}
        for day in range(1, 1 + self.LAYOUT.retention_days):
            date = f"2015-06-{day:02d}"
            for index in range(self.LAYOUT.shards_per_day):
                placement = place(ShardId(date, index), self.LAYOUT)
                key = (placement.space_index, placement.slot_index)
                assert key not in seen, (
                    f"{ShardId(date, index).name} collides with "
                    f"{seen[key]} at {key}"
                )
                seen[key] = ShardId(date, index).name
        assert len(seen) == self.LAYOUT.total_slots

    def test_place_wraps_after_retention_horizon(self):
        shard = ShardId("2015-06-01", 3)
        later = ShardId(
            f"2015-06-{1 + self.LAYOUT.retention_days:02d}", 3
        )
        assert place(shard, self.LAYOUT) == place(later, self.LAYOUT)

    def test_placement_offset_arithmetic(self):
        placement = place(ShardId(DATE, 0), self.LAYOUT)
        assert isinstance(placement, ShardPlacement)
        assert placement.byte_offset == (
            placement.slot_index * self.LAYOUT.shard_capacity_bytes
        )
        assert 0 <= placement.space_index < self.LAYOUT.num_spaces
        assert 0 <= placement.slot_index < self.LAYOUT.slots_per_space

    def test_layout_validates(self):
        with pytest.raises(ValueError):
            ShardLayout(
                shards_per_day=16,
                shard_capacity_bytes=8 * MiB,
                num_spaces=1,
                slots_per_space=8,
            )


# -- packer: buffer arithmetic -------------------------------------------


def make_buffer(capacity=1 * MiB):
    shard = ShardId(DATE, 0)
    return ShardBuffer(
        shard=shard,
        placement=ShardPlacement(space_index=0, slot_index=0, byte_offset=0),
        space_id="/unit0/disk0/space0",
        capacity_bytes=capacity,
    )


class TestShardBuffer:
    def test_append_assigns_sequential_offsets(self):
        buffer = make_buffer()
        first = buffer.append("u0", DATE, 100)
        second = buffer.append("u1", DATE, 200)
        assert first.offset_in_shard == 0
        assert second.offset_in_shard == RECORD_HEADER_BYTES + 100
        assert first.record_bytes == RECORD_HEADER_BYTES + 100
        assert first.payload_offset == RECORD_HEADER_BYTES
        assert buffer.tail == 2 * RECORD_HEADER_BYTES + 300
        assert buffer.buffered_bytes == buffer.tail

    def test_append_refuses_overflow(self):
        buffer = make_buffer(capacity=1000)
        buffer.append("u0", DATE, 500)
        with pytest.raises(ShardCapacityError):
            buffer.append("u1", DATE, 500)

    def test_take_buffered_marks_flushing_and_is_contiguous(self):
        buffer = make_buffer()
        records = [buffer.append(f"u{i}", DATE, 100) for i in range(5)]
        start, extent, taken = buffer.take_buffered()
        assert taken == records
        assert start == 0
        assert extent == 5 * (RECORD_HEADER_BYTES + 100)
        assert all(r.state is ObjectState.FLUSHING for r in taken)
        assert buffer.buffered == []
        assert buffer.inflight_flushes == 1
        # A second take with nothing buffered is a no-op.
        assert buffer.take_buffered() == (buffer.tail, 0, [])
        assert buffer.inflight_flushes == 1

    def test_second_run_starts_past_the_first(self):
        buffer = make_buffer()
        buffer.append("u0", DATE, 100)
        buffer.take_buffered()
        late = buffer.append("u1", DATE, 100)
        start, extent, taken = buffer.take_buffered()
        assert start == RECORD_HEADER_BYTES + 100
        assert taken == [late]
        assert extent == RECORD_HEADER_BYTES + 100

    def test_fill_and_occupancy(self):
        buffer = make_buffer(capacity=1000)
        buffer.append("u0", DATE, 436)  # 500 record bytes
        assert buffer.fill_fraction == pytest.approx(0.5)
        assert buffer.occupancy == 0.0
        _, extent, _ = buffer.take_buffered()
        buffer.durable_bytes += extent
        assert buffer.occupancy == pytest.approx(0.5)


# -- store over a live deployment ----------------------------------------


def build_store(shards_per_day=8, shard_capacity=4 * MiB, **config_kwargs):
    dep, gateway, objects = build_gateway("batch", **config_kwargs)
    store = ShardStore(
        gateway,
        ShardStoreConfig(
            tenant="t0",
            shards_per_day=shards_per_day,
            shard_capacity_bytes=shard_capacity,
        ),
    )
    return dep, gateway, store


class TestShardStore:
    def test_config_validates(self):
        with pytest.raises(ValueError):
            ShardStoreConfig(tenant="")
        with pytest.raises(ValueError):
            ShardStoreConfig(tenant="t0", flush_fill_fraction=0.0)

    def test_oversized_shard_capacity_is_rejected(self):
        dep, gateway, _ = build_gateway("batch")
        with pytest.raises(ShardStoreError):
            ShardStore(
                gateway,
                ShardStoreConfig(tenant="t0", shard_capacity_bytes=128 * MB),
            )

    def test_put_flush_ack_roundtrip(self):
        """40 puts, flush_all, drain: everything acked durable, spread
        over far fewer gateway writes than objects."""
        dep, gateway, store = build_store()
        records = []

        def ingest():
            for i in range(40):
                records.append(store.put(f"uid-{i}", DATE, 64 * KB))
            store.flush_all()

        dep.sim.call_in(0.0, ingest)
        drain(dep, gateway)

        assert store.stats.accepted == 40
        assert store.stats.acked == 40
        assert store.stats.flush_failures == 0
        assert all(r.state is ObjectState.ACKED for r in records)
        assert all(r.acked_at is not None for r in records)
        # Packing: at most one flush per routed shard, never one per object.
        assert store.stats.flushes <= store.config.shards_per_day
        assert gateway.stats.admitted == store.stats.flushes
        summary = store.summary()
        assert summary["directory_size"] == 40
        assert summary["shards_used"] == store.stats.flushes
        assert 0.0 < summary["mean_occupancy"] <= 1.0

    def test_fill_threshold_triggers_flush_mid_ingest(self):
        dep, gateway, store = build_store(
            shards_per_day=1, shard_capacity=1 * MiB
        )

        def ingest():
            for i in range(7):
                store.put(f"uid-{i}", DATE, 128 * KB)

        dep.sim.call_in(0.0, ingest)
        drain(dep, gateway)
        # 0.85 fill of 1 MiB trips during ingest without any flush_all.
        assert store.stats.flushes >= 1
        assert store.stats.acked == 7
        # The routed shard is now full: the capacity error surfaces.
        with pytest.raises(ShardCapacityError):
            store.put("uid-overflow", DATE, 128 * KB)

    def test_get_is_a_coalescible_range_read(self):
        """Same-shard retrievals in one batch share a disk pass."""
        dep, gateway, store = build_store(
            shards_per_day=1, coalesce_gap_bytes=4 * MiB
        )
        gets = []

        def ingest():
            for i in range(12):
                store.put(f"uid-{i}", DATE, 64 * KB)
            store.flush_all()

        def retrieve():
            for i in range(12):
                gets.append(store.get(f"uid-{i}", DATE))

        dep.sim.call_in(0.0, ingest)
        drain(dep, gateway)
        dep.sim.call_in(0.0, retrieve)
        drain(dep, gateway)

        assert store.stats.retrievals == 12
        assert store.stats.retrieval_failures == 0
        assert all(g.attempts == 1 for g in gets)
        # The 12 sub-block reads of one shard coalesced into few passes.
        assert gateway.stats.coalesced_reads > 0
        assert gateway.stats.disk_passes < gateway.stats.completed

    def test_get_range_targets_record_extent(self):
        dep, gateway, store = build_store(shards_per_day=1)
        holder = []

        def ingest():
            record = store.put("uid-0", DATE, 64 * KB)
            store.flush_all()
            holder.append(record)

        dep.sim.call_in(0.0, ingest)
        drain(dep, gateway)
        record = holder[0]

        def retrieve():
            holder.append(store.get("uid-0", DATE))

        dep.sim.call_in(0.0, retrieve)
        drain(dep, gateway)
        request = holder[1]
        slot = store.slot_ref(record.shard)
        assert request.ref is not None
        assert request.space_id == slot.space_id
        assert request.offset == slot.offset + record.offset_in_shard
        assert request.size == record.record_bytes

    def test_get_unknown_key_raises(self):
        dep, gateway, store = build_store()
        with pytest.raises(Exception) as excinfo:
            store.get("nobody", DATE)
        assert "no acked record" in str(excinfo.value)


# -- the registered experiment -------------------------------------------


class TestShardstoreExperiment:
    def test_small_point_packed_beats_naive(self):
        packed = shardstore_small_objects.run_point(
            "packed", seed=11, num_objects=200, num_gets=40
        )
        naive = shardstore_small_objects.run_point(
            "naive", seed=11, num_objects=200, num_gets=40
        )
        assert packed["exactly_once"] and naive["exactly_once"]
        assert packed["spin_ups"] < naive["spin_ups"]
        assert packed["spaces_touched"] < naive["spaces_touched"]

    def test_run_point_is_deterministic(self):
        def once():
            return shardstore_small_objects.run_point(
                "packed", seed=11, num_objects=200, num_gets=40
            )

        assert once() == once()

    def test_experiment_contract(self):
        experiment = shardstore_small_objects.EXPERIMENT
        assert experiment.name == "shardstore_small_objects"
        assert "seed" in experiment.params
        assert experiment.paper_ref
