"""Tests for the Iometer drivers and trace generators."""

import pytest

from repro.disk import ConnectionType, DiskModel, SimulatedDisk
from repro.fabric import prototype_fabric
from repro.sim import RngRegistry, Simulator
from repro.workload import (
    KB,
    MB,
    AccessPattern,
    IometerRun,
    WorkloadSpec,
    archival_batch_trace,
    cold_read_trace,
    model_throughput,
)


class TestModelThroughput:
    def test_matches_bandwidth_allocation(self):
        fabric = prototype_fabric()
        disks = [d for d, h in fabric.attachment_map().items() if h == "host0"]
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        result = model_throughput(fabric, disks, spec)
        assert result["total_bytes_per_second"] == pytest.approx(300e6, rel=1e-6)

    def test_mixed_spec_splits_directions(self):
        fabric = prototype_fabric()
        disks = [d for d, h in fabric.attachment_map().items() if h == "host0"]
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 0.5)
        result = model_throughput(fabric, disks, spec)
        # Each direction carries half of each disk's mixed demand; with 4
        # disks the total stays below the one-direction cap but uses both.
        per_disk = DiskModel().demand_bytes_per_second(spec)
        assert result["total_bytes_per_second"] == pytest.approx(
            4 * per_disk, rel=1e-6
        )

    def test_duplex_split(self):
        fabric = prototype_fabric()
        disks = [d for d, h in fabric.attachment_map().items() if h == "host0"]
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        result = model_throughput(fabric, disks, spec, duplex_split=True)
        assert result["total_bytes_per_second"] == pytest.approx(540e6, rel=1e-6)


class TestIometerRun:
    def make_run(self, spec, count=2):
        sim = Simulator()
        fabric = prototype_fabric()
        host0 = [d for d, h in fabric.attachment_map().items() if h == "host0"]
        disks = {
            d: SimulatedDisk(sim, d, connection=ConnectionType.HUB_AND_SWITCH)
            for d in host0[:count]
        }
        return sim, IometerRun(sim, fabric, disks, spec, rng=RngRegistry(3))

    def test_sequential_read_rate_close_to_model(self):
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        sim, run = self.make_run(spec, count=1)
        result = run.run(duration=30.0)
        expected = DiskModel().demand_bytes_per_second(spec)
        assert result["total_bytes_per_second"] == pytest.approx(expected, rel=0.05)

    def test_two_disks_fabric_limited(self):
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        sim, run = self.make_run(spec, count=2)
        result = run.run(duration=30.0)
        # Two disks want 2x186 MB/s but share a 300 MB/s port.
        assert result["total_bytes_per_second"] == pytest.approx(300e6, rel=0.06)

    def test_random_read_iops_close_to_model(self):
        spec = WorkloadSpec(4 * KB, AccessPattern.RANDOM, 1.0)
        sim, run = self.make_run(spec, count=1)
        result = run.run(duration=30.0)
        model = DiskModel().throughput(spec).iops
        assert result["total_iops"] == pytest.approx(model, rel=0.10)

    def test_mixed_workload_alternates(self):
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 0.5)
        sim, run = self.make_run(spec, count=1)
        result = run.run(duration=20.0)
        disk = list(run.disks.values())[0]
        assert disk.bytes_read > 0 and disk.bytes_written > 0
        # Mixed sequential pays the turnaround penalty: the event-driven
        # run converges to the analytic 50%-mix rate (Table II column),
        # well below the pure-read rate.
        mixed = DiskModel().demand_bytes_per_second(spec)
        pure = DiskModel().demand_bytes_per_second(
            WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        )
        assert result["total_bytes_per_second"] == pytest.approx(mixed, rel=0.06)
        assert result["total_bytes_per_second"] < 0.75 * pure

    def test_stats_accumulate(self):
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        sim, run = self.make_run(spec, count=2)
        result = run.run(duration=10.0)
        assert set(result["per_disk"]) == set(run.disks)
        for stats in run.stats.values():
            assert stats.completed > 0
            assert stats.bytes_moved == stats.completed * 4 * MB


class TestTraces:
    def test_cold_trace_poisson_mean(self):
        events = cold_read_trace(
            RngRegistry(9), duration=100 * 3600.0, mean_interarrival=600.0
        )
        assert 450 <= len(events) <= 750  # ~600 expected
        assert all(e.is_read for e in events)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_cold_trace_deterministic(self):
        a = cold_read_trace(RngRegistry(9), duration=3600.0)
        b = cold_read_trace(RngRegistry(9), duration=3600.0)
        assert a == b

    def test_archival_trace_batches(self):
        events = archival_batch_trace(
            duration=3 * 24 * 3600.0,
            batch_interval=24 * 3600.0,
            batch_bytes=16 * MB,
            write_size=4 * MB,
        )
        assert len(events) == 2 * 4  # two full batches fit before t=3d
        assert all(not e.is_read for e in events)
        # Sequential offsets within and across batches.
        offsets = [e.offset for e in events]
        assert offsets == sorted(offsets)

    def test_archival_trace_first_batch_at(self):
        events = archival_batch_trace(
            duration=100.0, batch_interval=1000.0, batch_bytes=4 * MB, first_batch_at=10.0
        )
        assert events and events[0].time == 10.0
