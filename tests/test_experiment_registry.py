"""Tests for the declarative Experiment registry and the unified CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments import (
    ALL_EXPERIMENTS,
    EXPERIMENTS,
    Experiment,
    ExperimentRegistry,
    ExperimentResult,
    RESULT_SCHEMA_VERSION,
)
from repro.experiments.common import format_table


class TestRegistry:
    def test_every_module_is_registered(self):
        assert set(EXPERIMENTS.names()) == set(ALL_EXPERIMENTS)
        assert len(EXPERIMENTS) == 15

    def test_entries_carry_paper_refs(self):
        for name in EXPERIMENTS.names():
            experiment = EXPERIMENTS.get(name)
            assert experiment.name == name
            assert experiment.paper_ref
            assert experiment.description

    def test_duplicate_registration_rejected(self):
        registry = ExperimentRegistry()
        exp = EXPERIMENTS.get("table1")
        registry.register(exp)
        with pytest.raises(ValueError):
            registry.register(exp)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="table1"):
            EXPERIMENTS.get("nope")

    def test_unknown_param_override_rejected(self):
        with pytest.raises(TypeError, match="no_such_param"):
            EXPERIMENTS.get("figure5").run(no_such_param=1)


class TestExperimentResult:
    def test_table4_result_is_versioned_and_json_round_trips(self):
        result = EXPERIMENTS.get("table4").run()
        assert isinstance(result, ExperimentResult)
        document = json.loads(result.to_json())
        assert document["version"] == RESULT_SCHEMA_VERSION
        assert document["name"] == "table4"
        assert document["paper_ref"]
        assert document["metrics"]
        assert document["relative_errors"]
        assert "hub power" in result.render()

    def test_figure5_result_carries_obs_and_errors(self):
        result = EXPERIMENTS.get("figure5").run()
        assert result.anchors_ok
        assert result.relative_errors["two_disk_4mb_seq_read"] < 0.05
        obs = result.obs
        assert obs["counters"]["switch.turns"] > 0
        assert any(name.endswith(".util") for name in obs["gauges"])
        assert "disk.queue_depth" in obs["histograms"]

    def test_seed_override_flows_through_params(self):
        result = EXPERIMENTS.get("figure5").run(seed=99)
        assert result.params["seed"] == 99


class TestCliJsonAndSeed:
    def test_run_json_emits_versioned_document(self, capsys):
        assert cli_main(["run", "table4", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == RESULT_SCHEMA_VERSION
        assert document["name"] == "table4"

    def test_run_json_seed_override(self, capsys):
        assert cli_main(["run", "figure5", "--json", "--seed", "21"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["params"]["seed"] == 21
        assert document["obs"]["counters"]["fabric.allocations"] > 0

    def test_seed_ignored_by_unseeded_experiments(self, capsys):
        assert cli_main(["run", "table4", "--json", "--seed", "5"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["params"] == {}

    def test_validate_json(self, capsys):
        assert cli_main(["validate", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["valid"] is True

    def test_list_shows_paper_refs(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Table I" in out


class TestFormatTable:
    def test_default_float_formatting(self):
        table = format_table(["a", "b"], [[1.25, "x"]])
        assert "1.2" in table and "x" in table

    def test_per_column_format_hook(self):
        table = format_table(
            ["name", "value", "ratio"],
            [["disk", 1234.5678, 0.25]],
            formats=[None, ".2f", ".0%"],
        )
        assert "1234.57" in table
        assert "25%" in table
