"""Tests for multi-unit deployments (one Master, several deploy units)."""

import pytest

from repro.cluster import build_multi_unit_deployment, parse_space_id
from repro.workload import MB


@pytest.fixture(scope="module")
def dep():
    deployment = build_multi_unit_deployment(num_units=2)
    deployment.settle(15.0)
    return deployment


class TestBootstrap:
    def test_unit_census(self, dep):
        assert set(dep.units) == {"unit0", "unit1"}
        for unit in dep.units.values():
            assert len(unit.fabric.disks) == 16
            assert len(unit.endpoints) == 4

    def test_namespaces_disjoint(self, dep):
        unit0_disks = set(dep.units["unit0"].disks)
        unit1_disks = set(dep.units["unit1"].disks)
        assert not unit0_disks & unit1_disks
        assert all(d.startswith("unit0.") for d in unit0_disks)

    def test_master_sees_all_hosts(self, dep):
        master = dep.active_master()
        assert master is not None
        online = master.sysstat.online_hosts()
        assert len(online) == 8
        assert "unit0.host0" in online and "unit1.host3" in online

    def test_master_sees_all_disks(self, dep):
        master = dep.active_master()
        assert len(master.sysstat.disk_to_host) == 32

    def test_sysconf_mappings(self, dep):
        assert dep.sysconf.unit_of_host("unit1.host2") == "unit1"
        assert dep.sysconf.unit_of_disk("unit0.disk5") == "unit0"


class TestAllocationAcrossUnits:
    def test_locality_hint_targets_specific_unit(self, dep):
        client = dep.new_client("mu-app", service="mu-svc")

        def scenario():
            a = yield from client.allocate(32 * MB, locality_hint="unit1.host2")
            return a

        info = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert info["host_id"] == "unit1.host2"
        unit, disk, _ = parse_space_id(info["space_id"])
        assert unit == "unit1"
        assert disk.startswith("unit1.")

    def test_exclude_forces_other_unit(self, dep):
        client = dep.new_client("mu-app2", service="mu-svc2")
        unit0_disks = sorted(dep.units["unit0"].disks)

        def scenario():
            info = yield from client.allocate(32 * MB, exclude_disks=unit0_disks)
            return info

        info = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert parse_space_id(info["space_id"])[0] == "unit1"

    def test_mount_and_io_across_units(self, dep):
        client = dep.new_client("mu-app3", service="mu-svc3")

        def scenario():
            a = yield from client.allocate(32 * MB, locality_hint="unit0.host0")
            b = yield from client.allocate(32 * MB, locality_hint="unit1.host0")
            sa = yield from client.mount(a["space_id"])
            sb = yield from client.mount(b["space_id"])
            ra = yield from sa.write(0, 4 * MB)
            rb = yield from sb.write(0, 4 * MB)
            return ra, rb

        ra, rb = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert ra["ok"] and rb["ok"]


class TestFailoverIsolation:
    def test_host_failure_contained_to_its_unit(self):
        dep = build_multi_unit_deployment(num_units=2)
        dep.settle(15.0)
        master = dep.active_master()
        unit1_before = dict(
            (d, h)
            for d, h in master.sysstat.disk_to_host.items()
            if d.startswith("unit1.")
        )
        dep.crash_host("unit0.host1")
        dep.settle(15.0)
        master = dep.active_master()
        # unit0's orphans moved within unit0.
        for disk in dep.units["unit0"].disks:
            host = dep.units["unit0"].fabric.attached_host(disk)
            assert host is None or host.startswith("unit0.")
            assert host != "unit0.host1"
        # unit1 untouched.
        for disk, host in unit1_before.items():
            assert master.sysstat.disk_to_host[disk] == host

    def test_migrate_within_unit(self):
        dep = build_multi_unit_deployment(num_units=2)
        dep.settle(15.0)
        from repro.net import RpcClient

        rpc = RpcClient(dep.sim, dep.network, "mu-op")
        master = dep.active_master().address

        def scenario():
            result = yield from rpc.call(
                master,
                "master.migrate_disk",
                "unit1.disk0",
                "unit1.host2",
                timeout=60.0,
            )
            return result

        dep.sim.run_until_event(dep.sim.process(scenario()))
        assert dep.units["unit1"].fabric.attached_host("unit1.disk0") == "unit1.host2"
