"""Integration tests for the replicated coordination service."""

import pytest

from repro.coord import CoordSession, Role, build_cluster
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def make_cluster(size=3, seed=1):
    sim = Simulator()
    net = Network(sim, jitter=0.0)
    replicas = build_cluster(sim, net, size=size, rng=RngRegistry(seed))
    return sim, net, replicas


def leader_of(replicas):
    leaders = [r for r in replicas if r.role is Role.LEADER and not r.crashed]
    return leaders[-1] if leaders else None


def run_session(sim, scenario):
    return sim.run_until_event(sim.process(scenario))


class TestElection:
    def test_exactly_one_leader_emerges(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        leaders = [r for r in replicas if r.role is Role.LEADER]
        assert len(leaders) == 1

    def test_leader_survives_steady_state(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        first = leader_of(replicas)
        sim.run(until=20.0)
        assert leader_of(replicas) is first
        assert first.current_epoch == leader_of(replicas).current_epoch

    def test_new_leader_after_crash(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        old = leader_of(replicas)
        old.crash()
        sim.run(until=15.0)
        new = leader_of(replicas)
        assert new is not None and new is not old
        assert new.current_epoch > old.current_epoch

    def test_recovered_replica_rejoins_as_follower(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        old = leader_of(replicas)
        old.crash()
        sim.run(until=15.0)
        old.recover()
        sim.run(until=25.0)
        assert old.role is not Role.LEADER
        leaders = [r for r in replicas if r.role is Role.LEADER]
        assert len(leaders) == 1

    def test_five_node_cluster(self):
        sim, net, replicas = make_cluster(size=5)
        sim.run(until=5.0)
        assert leader_of(replicas) is not None


class TestReplication:
    def test_write_then_read(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        session = CoordSession(sim, net, "client", [r.address for r in replicas])

        def scenario():
            yield from session.start()
            yield from session.create("/config", data={"units": 1})
            value = yield from session.get_data("/config")
            return value

        assert run_session(sim, scenario()) == {"units": 1}

    def test_committed_state_on_all_replicas(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        session = CoordSession(sim, net, "client", [r.address for r in replicas])

        def scenario():
            yield from session.start()
            yield from session.create("/x", data=42)

        run_session(sim, scenario())
        sim.run(until=sim.now + 2.0)  # let heartbeats propagate commits
        for replica in replicas:
            assert replica.tree.exists("/x"), replica.address
            assert replica.tree.get_data("/x") == 42

    def test_sequential_create_through_cluster(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        session = CoordSession(sim, net, "client", [r.address for r in replicas])

        def scenario():
            yield from session.start()
            yield from session.create("/queue")
            a = yield from session.create("/queue/n-", sequential=True)
            b = yield from session.create("/queue/n-", sequential=True)
            return (a, b)

        a, b = run_session(sim, scenario())
        assert a < b

    def test_state_survives_leader_failover(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        session = CoordSession(sim, net, "client", [r.address for r in replicas])

        def write():
            yield from session.start()
            yield from session.create("/durable", data="precious")

        run_session(sim, write())
        sim.run(until=sim.now + 1.0)
        leader_of(replicas).crash()
        sim.run(until=sim.now + 10.0)

        def read():
            value = yield from session.get_data("/durable")
            return value

        assert run_session(sim, read()) == "precious"

    def test_writes_work_after_failover(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        session = CoordSession(sim, net, "client", [r.address for r in replicas])
        run_session(sim, session.start())
        leader_of(replicas).crash()
        sim.run(until=sim.now + 10.0)

        def write():
            yield from session.create("/after", data=1)
            value = yield from session.get_data("/after")
            return value

        assert run_session(sim, write()) == 1

    def test_minority_crash_keeps_serving(self):
        sim, net, replicas = make_cluster(size=5)
        sim.run(until=5.0)
        followers = [r for r in replicas if r.role is not Role.LEADER]
        followers[0].crash()
        followers[1].crash()
        session = CoordSession(sim, net, "client", [r.address for r in replicas])

        def scenario():
            yield from session.start()
            yield from session.create("/still-up", data=True)
            result = yield from session.exists("/still-up")
            return result

        assert run_session(sim, scenario()) is True


class TestEphemeralSessions:
    def test_ephemeral_removed_on_expiry(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        session = CoordSession(sim, net, "client", [r.address for r in replicas])

        def scenario():
            yield from session.start()
            yield from session.create("/hosts")
            yield from session.create("/hosts/me", ephemeral=True)

        run_session(sim, scenario())
        leader = leader_of(replicas)
        assert leader.tree.exists("/hosts/me")
        # Silence the client: its pings stop reaching the cluster.
        net.set_alive("client", False)
        sim.run(until=sim.now + 10.0)
        assert not leader_of(replicas).tree.exists("/hosts/me")

    def test_live_session_keeps_ephemeral(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        session = CoordSession(sim, net, "client", [r.address for r in replicas])

        def scenario():
            yield from session.start()
            yield from session.create("/hosts")
            yield from session.create("/hosts/me", ephemeral=True)

        run_session(sim, scenario())
        sim.run(until=sim.now + 10.0)
        assert leader_of(replicas).tree.exists("/hosts/me")

    def test_ephemeral_survives_leader_failover_with_live_client(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        session = CoordSession(sim, net, "client", [r.address for r in replicas])

        def scenario():
            yield from session.start()
            yield from session.create("/hosts")
            yield from session.create("/hosts/me", ephemeral=True)

        run_session(sim, scenario())
        leader_of(replicas).crash()
        sim.run(until=sim.now + 12.0)
        assert leader_of(replicas).tree.exists("/hosts/me")


class TestWatches:
    def test_data_watch_fires_on_change(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        writer = CoordSession(sim, net, "writer", [r.address for r in replicas])
        watcher = CoordSession(sim, net, "watcher", [r.address for r in replicas])
        fired = []

        def scenario():
            yield from writer.start()
            yield from watcher.start()
            yield from writer.create("/watched", data=0)
            yield from watcher.watch("/watched", lambda p, t: fired.append((p, t)))
            yield from writer.set_data("/watched", 1)
            yield sim.timeout(1.0)

        run_session(sim, scenario())
        assert fired == [("/watched", "changed")]

    def test_watch_is_one_shot(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        writer = CoordSession(sim, net, "writer", [r.address for r in replicas])
        watcher = CoordSession(sim, net, "watcher", [r.address for r in replicas])
        fired = []

        def scenario():
            yield from writer.start()
            yield from watcher.start()
            yield from writer.create("/watched", data=0)
            yield from watcher.watch("/watched", lambda p, t: fired.append(t))
            yield from writer.set_data("/watched", 1)
            yield sim.timeout(1.0)
            yield from writer.set_data("/watched", 2)
            yield sim.timeout(1.0)

        run_session(sim, scenario())
        assert fired == ["changed"]

    def test_children_watch(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        writer = CoordSession(sim, net, "writer", [r.address for r in replicas])
        watcher = CoordSession(sim, net, "watcher", [r.address for r in replicas])
        fired = []

        def scenario():
            yield from writer.start()
            yield from watcher.start()
            yield from writer.create("/parent")
            yield from watcher.watch(
                "/parent", lambda p, t: fired.append((p, t)), kind="children"
            )
            yield from writer.create("/parent/kid")
            yield sim.timeout(1.0)

        run_session(sim, scenario())
        assert fired == [("/parent", "created")]

    def test_delete_fires_node_watch(self):
        sim, net, replicas = make_cluster()
        sim.run(until=5.0)
        writer = CoordSession(sim, net, "writer", [r.address for r in replicas])
        watcher = CoordSession(sim, net, "watcher", [r.address for r in replicas])
        fired = []

        def scenario():
            yield from writer.start()
            yield from watcher.start()
            yield from writer.create("/doomed")
            yield from watcher.watch("/doomed", lambda p, t: fired.append(t))
            yield from writer.delete("/doomed")
            yield sim.timeout(1.0)

        run_session(sim, scenario())
        assert fired == ["deleted"]
