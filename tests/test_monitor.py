"""Tests for the observability snapshot/dashboard."""

import pytest

from repro.cluster import build_deployment, build_multi_unit_deployment
from repro.monitor import render_dashboard, snapshot
from repro.workload import MB


class TestSnapshot:
    def test_single_unit_snapshot(self):
        dep = build_deployment()
        dep.settle(15.0)
        snap = snapshot(dep)
        assert snap.active_master is not None
        assert snap.coord_leader is not None
        unit = snap.units["unit0"]
        assert sum(len(d) for d in unit.disks_per_host.values()) == 16
        assert unit.detached_disks == []
        assert unit.fabric_watts > 0

    def test_snapshot_reflects_allocation_and_failure(self):
        dep = build_deployment()
        dep.settle(15.0)
        client = dep.new_client("mon-app", service="mon")

        def scenario():
            info = yield from client.allocate(32 * MB)
            return info

        info = dep.sim.run_until_event(dep.sim.process(scenario()))
        dep.fabric.node("leafhub0").fail()
        dep.bus.sync()
        dep.settle(3.0)
        snap = snapshot(dep)
        assert snap.spaces_allocated == 1
        unit = snap.units["unit0"]
        assert "leafhub0" in unit.failed_components
        assert "disk0" in unit.detached_disks and "disk1" in unit.detached_disks
        host = info["host_id"]
        assert unit.exposed_targets[host] == 1

    def test_multi_unit_snapshot(self):
        dep = build_multi_unit_deployment(num_units=2)
        dep.settle(15.0)
        snap = snapshot(dep)
        assert set(snap.units) == {"unit0", "unit1"}

    def test_dashboard_renders(self):
        dep = build_deployment()
        dep.settle(15.0)
        text = render_dashboard(snapshot(dep))
        assert "UStore status" in text
        assert "host0" in text and "master" in text

    def test_dashboard_shows_failures(self):
        dep = build_deployment()
        dep.settle(15.0)
        dep.fabric.node("leafhub0").fail()
        dep.bus.sync()
        dep.settle(2.0)
        text = render_dashboard(snapshot(dep))
        assert "FAILED: leafhub0" in text
        assert "DETACHED" in text
