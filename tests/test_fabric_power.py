"""Fabric power model tests (Table IV and §VII-C)."""

import pytest

from repro.fabric import (
    FabricPowerModel,
    FabricPowerParams,
    hub_power,
    prototype_fabric,
)

# Table IV: hub power vs number of connected disks.
TABLE4 = {0: 0.21, 1: 1.06, 2: 1.23, 3: 1.47, 4: 1.67}


class TestHubPower:
    @pytest.mark.parametrize("disks,expected", sorted(TABLE4.items()))
    def test_matches_table4(self, disks, expected):
        assert hub_power(disks) == pytest.approx(expected, abs=0.05)

    def test_monotone(self):
        values = [hub_power(n) for n in range(5)]
        assert values == sorted(values)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hub_power(-1)

    def test_linear_after_first(self):
        params = FabricPowerParams()
        deltas = [hub_power(n + 1) - hub_power(n) for n in range(1, 4)]
        assert all(d == pytest.approx(params.hub_per_extra_device) for d in deltas)


class TestFabricPowerModel:
    def test_prototype_fabric_power_near_13_6(self):
        """§VII-C: the 16-disk fabric draws ~13.6W while serving I/O.

        Our reconstruction of the (not fully specified) prototype fabric
        carries 12 hubs and 24 switches, slightly more hardware than the
        photo suggests, so we accept a ±25% band around the paper's
        measurement.
        """
        model = FabricPowerModel(prototype_fabric())
        total = model.total_power()
        assert total == pytest.approx(13.6, rel=0.25)

    def test_all_off_draws_nothing(self):
        f = prototype_fabric()
        model = FabricPowerModel(f)
        for node_id in f.nodes:
            model.set_powered(node_id, False)
        assert model.total_power() == 0.0

    def test_power_off_subtree(self):
        f = prototype_fabric()
        model = FabricPowerModel(f)
        baseline = model.total_power()
        model.power_off_subtree("leafhub0")
        lowered = model.total_power()
        assert lowered < baseline
        model.power_on_subtree("leafhub0")
        assert model.total_power() == pytest.approx(baseline)

    def test_powering_off_disks_unloads_hub(self):
        """Table IV: hub power falls as downstream devices power off."""
        f = prototype_fabric()
        model = FabricPowerModel(f)
        baseline = model.total_power()
        # Power off the two disks (and bridges) under leafhub0.
        for node_id in ("disk0", "bridge0", "disk1", "bridge1"):
            model.set_powered(node_id, False)
        assert model.total_power() < baseline

    def test_unknown_node_rejected(self):
        model = FabricPowerModel(prototype_fabric())
        with pytest.raises(KeyError):
            model.set_powered("nope", True)
