"""Unit tests for the znode tree."""

import pytest

from repro.coord import (
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    ZnodeError,
    ZnodeTree,
)


class TestBasicOps:
    def test_root_exists(self):
        tree = ZnodeTree()
        assert tree.exists("/")

    def test_create_and_get(self):
        tree = ZnodeTree()
        assert tree.create("/a", data=1) == "/a"
        assert tree.get_data("/a") == 1

    def test_nested_create(self):
        tree = ZnodeTree()
        tree.create("/a")
        tree.create("/a/b", data="x")
        assert tree.get_data("/a/b") == "x"
        assert tree.get_children("/a") == ["b"]

    def test_create_missing_parent(self):
        tree = ZnodeTree()
        with pytest.raises(NoNodeError):
            tree.create("/a/b")

    def test_create_duplicate(self):
        tree = ZnodeTree()
        tree.create("/a")
        with pytest.raises(NodeExistsError):
            tree.create("/a")

    def test_relative_path_rejected(self):
        tree = ZnodeTree()
        with pytest.raises(ZnodeError):
            tree.create("a")

    def test_trailing_slash_rejected(self):
        tree = ZnodeTree()
        with pytest.raises(ZnodeError):
            tree.exists("/a/")

    def test_double_slash_rejected(self):
        tree = ZnodeTree()
        with pytest.raises(ZnodeError):
            tree.exists("/a//b")

    def test_get_missing(self):
        tree = ZnodeTree()
        with pytest.raises(NoNodeError):
            tree.get_data("/missing")

    def test_set_data_bumps_version(self):
        tree = ZnodeTree()
        tree.create("/a")
        assert tree.set_data("/a", 1) == 1
        assert tree.set_data("/a", 2) == 2
        assert tree.get("/a").version == 2

    def test_set_data_version_check(self):
        tree = ZnodeTree()
        tree.create("/a")
        tree.set_data("/a", 1)
        with pytest.raises(ZnodeError):
            tree.set_data("/a", 2, expected_version=0)

    def test_delete(self):
        tree = ZnodeTree()
        tree.create("/a")
        tree.delete("/a")
        assert not tree.exists("/a")

    def test_delete_non_empty(self):
        tree = ZnodeTree()
        tree.create("/a")
        tree.create("/a/b")
        with pytest.raises(NotEmptyError):
            tree.delete("/a")
        tree.delete("/a", recursive=True)
        assert not tree.exists("/a")

    def test_delete_root_rejected(self):
        tree = ZnodeTree()
        with pytest.raises(ZnodeError):
            tree.delete("/")

    def test_children_sorted(self):
        tree = ZnodeTree()
        for name in ("c", "a", "b"):
            tree.create(f"/{name}")
        assert tree.get_children("/") == ["a", "b", "c"]


class TestSequential:
    def test_sequence_numbers(self):
        tree = ZnodeTree()
        tree.create("/locks")
        first = tree.create("/locks/lock-", sequential=True)
        second = tree.create("/locks/lock-", sequential=True)
        assert first == "/locks/lock-0000000000"
        assert second == "/locks/lock-0000000001"

    def test_counter_is_per_parent(self):
        tree = ZnodeTree()
        tree.create("/a")
        tree.create("/b")
        assert tree.create("/a/n-", sequential=True).endswith("0000000000")
        assert tree.create("/b/n-", sequential=True).endswith("0000000000")


class TestEphemerals:
    def test_ephemeral_ownership(self):
        tree = ZnodeTree()
        tree.create("/live", ephemeral_owner="s1")
        assert tree.get("/live").is_ephemeral
        assert tree.ephemeral_paths_of("s1") == ["/live"]

    def test_ephemeral_cannot_have_children(self):
        tree = ZnodeTree()
        tree.create("/live", ephemeral_owner="s1")
        with pytest.raises(ZnodeError):
            tree.create("/live/child")

    def test_delete_ephemerals_of_session(self):
        tree = ZnodeTree()
        tree.create("/hosts")
        tree.create("/hosts/h1", ephemeral_owner="s1")
        tree.create("/hosts/h2", ephemeral_owner="s2")
        removed = tree.delete_ephemerals_of("s1")
        assert removed == ["/hosts/h1"]
        assert tree.exists("/hosts/h2")

    def test_dump(self):
        tree = ZnodeTree()
        tree.create("/a", data=1)
        tree.create("/a/b", data=2)
        assert tree.dump() == {"/": None, "/a": 1, "/a/b": 2}
