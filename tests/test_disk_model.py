"""Disk service-time model vs Table II, plus device/state-machine tests."""

import pytest

from repro.disk import (
    ConnectionType,
    DiskModel,
    DiskOfflineError,
    DiskPowerState,
    DiskStateError,
    IoRequest,
    SimulatedDisk,
    SpinStateMachine,
    TOSHIBA_POWER_SATA,
    TOSHIBA_POWER_USB,
)
from repro.sim import Simulator
from repro.workload import KB, MB, TABLE2_WORKLOADS, AccessPattern, WorkloadSpec

# Table II of the paper, columns in TABLE2_WORKLOADS order:
# 4KB Seq (IO/s) R/50/W, 4KB Rand (IO/s) R/50/W,
# 4MB Seq (MB/s) R/50/W, 4MB Rand (MB/s) R/50/W.
TABLE2 = {
    ConnectionType.SATA: [
        13378, 8066, 11211, 191.9, 105.4, 86.9,
        184.8, 105.7, 180.2, 129.1, 78.7, 57.5,
    ],
    ConnectionType.USB: [
        5380, 4294, 6166, 189.0, 105.2, 85.2,
        185.8, 119.7, 184.0, 147.9, 95.5, 79.3,
    ],
    ConnectionType.HUB_AND_SWITCH: [
        5381, 4595, 6181, 189.2, 106.0, 87.9,
        185.8, 118.6, 184.9, 147.7, 97.7, 79.9,
    ],
}

#: The model is calibrated from the SATA/USB rows; the worst cell (H&S
#: 4KB-S-50%, where the paper's hub-and-switch measurement anomalously
#: *exceeds* plain USB) sits at -11%.
TOLERANCE = 0.12


class TestTable2Calibration:
    @pytest.mark.parametrize("connection", list(TABLE2))
    def test_all_cells_within_tolerance(self, connection):
        model = DiskModel(connection=connection)
        for spec, expected in zip(TABLE2_WORKLOADS, TABLE2[connection]):
            estimate = model.throughput(spec)
            value = estimate.iops if spec.transfer_size == 4 * KB else estimate.mb_per_second
            error = abs(value - expected) / expected
            assert error <= TOLERANCE, (
                f"{connection.value} {spec.name}: model {value:.1f} "
                f"vs paper {expected} ({error:.1%})"
            )

    def test_sata_faster_than_usb_for_small_sequential(self):
        """§VII-A: direct SATA is ~2x USB on 4KB sequential reads."""
        spec = WorkloadSpec(4 * KB, AccessPattern.SEQUENTIAL, 1.0)
        sata = DiskModel(connection=ConnectionType.SATA).throughput(spec).iops
        usb = DiskModel(connection=ConnectionType.USB).throughput(spec).iops
        assert 1.8 <= sata / usb <= 3.0

    def test_large_transfers_unaffected_by_connection(self):
        """§VII-A: for large I/O the bridge/hub/switch have no impact."""
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        rates = [
            DiskModel(connection=c).throughput(spec).mb_per_second
            for c in ConnectionType
        ]
        assert max(rates) - min(rates) < 3.0  # MB/s

    def test_hs_close_to_usb_everywhere(self):
        hs = DiskModel(connection=ConnectionType.HUB_AND_SWITCH)
        usb = DiskModel(connection=ConnectionType.USB)
        for spec in TABLE2_WORKLOADS:
            a = hs.throughput(spec).bytes_per_second
            b = usb.throughput(spec).bytes_per_second
            assert abs(a - b) / b < 0.05

    def test_random_slower_than_sequential(self):
        model = DiskModel(connection=ConnectionType.SATA)
        for size in (4 * KB, 4 * MB):
            seq = model.throughput(WorkloadSpec(size, AccessPattern.SEQUENTIAL, 1.0))
            rand = model.throughput(WorkloadSpec(size, AccessPattern.RANDOM, 1.0))
            assert rand.bytes_per_second < seq.bytes_per_second

    def test_mix_penalty_zero_for_pure(self):
        model = DiskModel()
        assert model.mix_penalty(WorkloadSpec(4 * KB, AccessPattern.SEQUENTIAL, 1.0)) == 0
        assert model.mix_penalty(WorkloadSpec(4 * KB, AccessPattern.SEQUENTIAL, 0.0)) == 0

    def test_mix_penalty_maximal_at_half(self):
        model = DiskModel()
        penalties = [
            model.mix_penalty(WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, p))
            for p in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert penalties[2] == max(penalties)

    def test_service_time_monotone_in_size(self):
        model = DiskModel()
        sizes = [4 * KB, 64 * KB, 1 * MB, 4 * MB]
        times = [
            model.service_time(WorkloadSpec(s, AccessPattern.SEQUENTIAL, 1.0))
            for s in sizes
        ]
        assert times == sorted(times)


class TestWorkloadSpec:
    def test_name_round_trip(self):
        for spec in TABLE2_WORKLOADS:
            assert WorkloadSpec.parse(spec.name) == spec

    def test_name_format(self):
        assert WorkloadSpec(4 * KB, AccessPattern.SEQUENTIAL, 1.0).name == "4KB-S-R"
        assert WorkloadSpec(4 * MB, AccessPattern.RANDOM, 0.0).name == "4MB-R-W"
        assert WorkloadSpec(4 * MB, AccessPattern.RANDOM, 0.5).name == "4MB-R-50%R"

    def test_invalid_read_fraction(self):
        with pytest.raises(ValueError):
            WorkloadSpec(4 * KB, AccessPattern.RANDOM, 1.5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WorkloadSpec(0, AccessPattern.RANDOM, 1.0)

    def test_grid_has_twelve_cells(self):
        assert len(TABLE2_WORKLOADS) == 12


class TestSpinStateMachine:
    def test_initial_state(self):
        sm = SpinStateMachine()
        assert sm.state is DiskPowerState.IDLE
        assert sm.is_spinning

    def test_legal_cycle(self):
        sm = SpinStateMachine()
        sm.transition(DiskPowerState.SPUN_DOWN)
        sm.transition(DiskPowerState.SPINNING_UP)
        sm.transition(DiskPowerState.IDLE)
        assert sm.spin_up_count == 1
        assert sm.spin_down_count == 1

    def test_illegal_transition(self):
        sm = SpinStateMachine()  # IDLE cannot jump straight to SPINNING_UP
        with pytest.raises(DiskStateError):
            sm.transition(DiskPowerState.SPINNING_UP)

    def test_active_cannot_spin_down(self):
        sm = SpinStateMachine()
        sm.transition(DiskPowerState.ACTIVE)
        with pytest.raises(DiskStateError):
            sm.transition(DiskPowerState.SPUN_DOWN)

    def test_power_off_from_spun_down(self):
        sm = SpinStateMachine()
        sm.transition(DiskPowerState.SPUN_DOWN)
        sm.transition(DiskPowerState.POWERED_OFF)
        assert not sm.is_available

    def test_same_state_is_noop(self):
        sm = SpinStateMachine()
        sm.transition(DiskPowerState.IDLE)
        assert sm.spin_up_count == 0


class TestSimulatedDisk:
    def make_disk(self):
        sim = Simulator()
        return sim, SimulatedDisk(sim, "d0")

    def test_io_takes_model_time(self):
        sim, disk = self.make_disk()
        done = disk.submit(IoRequest(offset=0, size=4 * MB, is_read=True))
        service = sim.run_until_event(done)
        expected = disk.model.service_time(
            WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        )
        assert service == pytest.approx(expected)
        assert sim.now == pytest.approx(expected)

    def test_sequential_detection(self):
        sim, disk = self.make_disk()
        first = disk.submit(IoRequest(offset=0, size=1 * MB, is_read=True))
        sim.run_until_event(first)
        t0 = sim.now
        nxt = disk.submit(IoRequest(offset=1 * MB, size=1 * MB, is_read=True))
        sim.run_until_event(nxt)
        seq_time = sim.now - t0
        t1 = sim.now
        jump = disk.submit(IoRequest(offset=100 * MB, size=1 * MB, is_read=True))
        sim.run_until_event(jump)
        rand_time = sim.now - t1
        assert rand_time > seq_time

    def test_queue_serializes(self):
        sim, disk = self.make_disk()
        a = disk.submit(IoRequest(offset=0, size=4 * MB, is_read=True))
        b = disk.submit(IoRequest(offset=4 * MB, size=4 * MB, is_read=True))
        sim.run_until_event(sim.all_of([a, b]))
        single = disk.model.service_time(WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0))
        assert sim.now == pytest.approx(2 * single)

    def test_failed_disk_rejects_io(self):
        sim, disk = self.make_disk()
        disk.fail()
        done = disk.submit(IoRequest(offset=0, size=4 * KB, is_read=True))
        with pytest.raises(DiskOfflineError):
            sim.run_until_event(done)

    def test_powered_off_rejects_io(self):
        sim, disk = self.make_disk()
        disk.spin_down()
        disk.power_off()
        done = disk.submit(IoRequest(offset=0, size=4 * KB, is_read=True))
        with pytest.raises(DiskOfflineError):
            sim.run_until_event(done)

    def test_spun_down_disk_wakes_for_io(self):
        sim, disk = self.make_disk()
        disk.spin_down()
        assert disk.power_state is DiskPowerState.SPUN_DOWN
        done = disk.submit(IoRequest(offset=0, size=4 * KB, is_read=True))
        sim.run_until_event(done)
        assert sim.now >= disk.spec.spin_up_time
        assert disk.power_state is DiskPowerState.IDLE
        assert disk.states.spin_up_count == 1

    def test_io_counters(self):
        sim, disk = self.make_disk()
        sim.run_until_event(disk.submit(IoRequest(offset=0, size=4 * KB, is_read=True)))
        sim.run_until_event(disk.submit(IoRequest(offset=4 * KB, size=8 * KB, is_read=False)))
        assert disk.completed_ios == 2
        assert disk.bytes_read == 4 * KB
        assert disk.bytes_written == 8 * KB

    def test_power_draw_by_state(self):
        sim, disk = self.make_disk()
        assert disk.power_draw(TOSHIBA_POWER_USB) == 5.76
        disk.spin_down()
        assert disk.power_draw(TOSHIBA_POWER_USB) == 1.56
        disk.power_off()
        assert disk.power_draw(TOSHIBA_POWER_USB) == 0.0

    def test_energy_accounting(self):
        sim, disk = self.make_disk()
        sim.run(until=10.0)
        disk.spin_down()
        sim.run(until=20.0)
        # 10 s idle + 10 s spun down under the USB profile.
        expected = 10 * 5.76 + 10 * 1.56
        assert disk.energy_joules(TOSHIBA_POWER_USB) == pytest.approx(expected)

    def test_sata_profile_default(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d", connection=ConnectionType.SATA)
        assert disk.default_power_profile() == TOSHIBA_POWER_SATA

    def test_invalid_io_rejected(self):
        with pytest.raises(ValueError):
            IoRequest(offset=-1, size=4, is_read=True)
        with pytest.raises(ValueError):
            IoRequest(offset=0, size=0, is_read=True)
