"""Tests for the CLI and the §IV-F service power-control path."""

import pytest

from repro.cli import main as cli_main
from repro.cluster import build_deployment
from repro.disk import DiskPowerState
from repro.net import RemoteError
from repro.workload import MB


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure6" in out

    def test_run_single(self, capsys):
        assert cli_main(["run", "table4"]) == 0
        out = capsys.readouterr().out
        assert "hub power" in out

    def test_run_unknown(self, capsys):
        assert cli_main(["run", "nope"]) == 2

    def test_cost(self, capsys):
        assert cli_main(["cost"]) == 0
        assert "UStore" in capsys.readouterr().out

    def test_validate_good(self, capsys):
        assert cli_main(["validate", "--hosts", "4"]) == 0
        assert "valid: True" in capsys.readouterr().out


class TestServicePowerControl:
    """§IV-F: services may spin their *own* disks up and down."""

    def setup_deployment(self):
        dep = build_deployment()
        dep.settle(15.0)
        return dep

    def test_owner_can_spin_down_and_up(self):
        dep = self.setup_deployment()
        client = dep.new_client("svc-a-app", service="svc-a")

        def scenario():
            info = yield from client.allocate(64 * MB)
            yield from client.set_disk_power(info["space_id"], "spin_down")
            return info

        info = dep.sim.run_until_event(dep.sim.process(scenario()))
        disk_id = info["space_id"].split("/")[2]
        assert dep.disks[disk_id].power_state is DiskPowerState.SPUN_DOWN

        def wake():
            yield from client.set_disk_power(info["space_id"], "spin_up")

        dep.sim.run_until_event(dep.sim.process(wake()))
        assert dep.disks[disk_id].states.is_spinning

    def test_non_owner_rejected(self):
        dep = self.setup_deployment()
        owner = dep.new_client("owner-app", service="owner")
        intruder = dep.new_client("intruder-app", service="intruder")

        def scenario():
            info = yield from owner.allocate(64 * MB)
            yield from intruder.set_disk_power(info["space_id"], "spin_down")

        with pytest.raises(RemoteError, match="PermissionError"):
            dep.sim.run_until_event(dep.sim.process(scenario()))

    def test_shared_disk_rejected(self):
        """Power control needs exclusive disk ownership (§IV-A rule 1
        exists exactly to make this possible)."""
        dep = self.setup_deployment()
        a = dep.new_client("a-app", service="svc-shared")
        b = dep.new_client("b-app", service="svc-other")

        def scenario():
            info_a = yield from a.allocate(64 * MB)
            disk = info_a["space_id"].split("/")[2]
            # Force the second service onto the same disk.
            exclude = [d for d in dep.disks if d != disk]
            yield from b.allocate(64 * MB, exclude_disks=exclude)
            yield from a.set_disk_power(info_a["space_id"], "spin_down")

        with pytest.raises(RemoteError, match="shared by"):
            dep.sim.run_until_event(dep.sim.process(scenario()))

    def test_io_to_spun_down_disk_wakes_it(self):
        dep = self.setup_deployment()
        client = dep.new_client("svc-app", service="svc")

        def scenario():
            info = yield from client.allocate(64 * MB)
            space = yield from client.mount(info["space_id"])
            yield from client.set_disk_power(info["space_id"], "spin_down")
            start = dep.sim.now
            yield from space.read(0, 4 * MB)
            return dep.sim.now - start

        elapsed = dep.sim.run_until_event(dep.sim.process(scenario()))
        # The read paid the ~8s spin-up (cold-data latency, §I).
        assert elapsed >= 8.0


class TestEndpointPowerPolicy:
    def test_idle_disks_spin_down_automatically(self):
        from repro.cluster import DeploymentConfig, EndPointConfig

        config = DeploymentConfig(
            endpoint=EndPointConfig(
                power_policy_enabled=True, spin_down_idle_seconds=20.0
            )
        )
        dep = build_deployment(config=config)
        dep.settle(60.0)
        spun_down = sum(
            1
            for disk in dep.disks.values()
            if disk.power_state is DiskPowerState.SPUN_DOWN
        )
        assert spun_down == len(dep.disks)
