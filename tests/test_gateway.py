"""Tests for repro.gateway: queues, scheduling, admission, dispatch.

Unit tests cover the weighted-fair queue, the power accountant and the
two scheduler strategies in isolation; integration tests drive a real
Gateway over a full 16-disk deployment through the ClientLib mount
path, and the determinism test replays the registered ``gateway_slo``
experiment point twice.
"""

import warnings

import pytest

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.disk.device import SimulatedDisk
from repro.disk.states import DiskPowerState
from repro.experiments import gateway_slo
from repro.gateway import (
    AdmissionError,
    ColdReadBatchScheduler,
    FifoScheduler,
    Gateway,
    GatewayConfig,
    DiskPass,
    GatewayError,
    GatewayRequest,
    ObjectRef,
    ReadObject,
    ReadRange,
    WriteObject,
    coalesce_batch,
    resolve_op,
    OpenLoopTrafficGenerator,
    PendingDisk,
    PowerAccountant,
    QueueFullError,
    RequestState,
    TenantSpec,
    TraceArrival,
    UnknownTenantError,
    WeightedFairQueue,
    make_scheduler,
    mount_gateway_spaces,
)
from repro.obs import MetricsRegistry, export_json
from repro.sim import EventDigest, Simulator
from repro.workload import MB


def request(
    rid,
    tenant,
    disk="disk0",
    size=1 * MB,
    arrival=0.0,
    deadline=60.0,
):
    return GatewayRequest(
        request_id=rid,
        tenant=tenant,
        space_id=f"/unit0/{disk}/space0",
        disk_id=disk,
        offset=0,
        size=size,
        is_read=True,
        arrival=arrival,
        deadline=deadline,
    )


class TestWeightedFairQueue:
    def specs(self):
        return {
            "heavy": TenantSpec(name="heavy", weight=2.0, max_queue_depth=16),
            "light": TenantSpec(name="light", weight=1.0, max_queue_depth=16),
        }

    def test_drains_in_proportion_to_weight(self):
        queue = WeightedFairQueue(self.specs())
        rid = 0
        for _ in range(4):
            queue.push(request(rid, "heavy"))
            rid += 1
            queue.push(request(rid, "light"))
            rid += 1
        taken = queue.take_for_disk("disk0", 6)
        by_tenant = [r.tenant for r in taken]
        assert by_tenant.count("heavy") == 4
        assert by_tenant.count("light") == 2

    def test_queue_full_is_typed_and_bounded(self):
        specs = {"t": TenantSpec(name="t", max_queue_depth=2)}
        queue = WeightedFairQueue(specs)
        queue.push(request(0, "t"))
        queue.push(request(1, "t"))
        with pytest.raises(QueueFullError) as info:
            queue.push(request(2, "t"))
        assert isinstance(info.value, AdmissionError)
        assert info.value.tenant == "t"
        assert info.value.depth == 2 and info.value.limit == 2
        assert queue.depth("t") == 2  # the reject did not enqueue

    def test_unknown_tenant_is_typed(self):
        queue = WeightedFairQueue(self.specs())
        with pytest.raises(UnknownTenantError):
            queue.push(request(0, "nobody"))

    def test_take_for_disk_only_touches_that_disk(self):
        queue = WeightedFairQueue(self.specs())
        queue.push(request(0, "heavy", disk="disk0"))
        queue.push(request(1, "heavy", disk="disk1"))
        taken = queue.take_for_disk("disk0", 10)
        assert [r.request_id for r in taken] == [0]
        assert queue.total_depth() == 1

    def test_take_oldest_is_global_fifo(self):
        queue = WeightedFairQueue(self.specs())
        queue.push(request(0, "light", arrival=2.0))
        queue.push(request(1, "heavy", arrival=1.0))
        queue.push(request(2, "heavy", arrival=3.0))
        order = [queue.take_oldest().request_id for _ in range(3)]
        assert order == [1, 0, 2]
        assert queue.take_oldest() is None

    def test_pending_by_disk_summarizes(self):
        queue = WeightedFairQueue(self.specs())
        queue.push(request(0, "heavy", disk="disk1", arrival=5.0, deadline=50.0))
        queue.push(request(1, "light", disk="disk0", arrival=1.0, deadline=90.0))
        queue.push(request(2, "heavy", disk="disk1", arrival=3.0, deadline=40.0))
        pending = queue.pending_by_disk()
        assert [p.disk_id for p in pending] == ["disk0", "disk1"]
        disk1 = pending[1]
        assert disk1.count == 2
        assert disk1.earliest_arrival == 3.0
        assert disk1.earliest_deadline == 40.0
        assert disk1.oldest_request_id == 0

    def test_idle_tenant_does_not_bank_credit(self):
        """After the queue drains, a newly arriving tenant starts at the
        advanced virtual time, not at zero."""
        queue = WeightedFairQueue(self.specs())
        for rid in range(4):
            queue.push(request(rid, "heavy"))
        dispatched = queue.take_for_disk("disk0", 4)
        high_water = max(r.fair_tag for r in dispatched)
        late = request(10, "light")
        queue.push(late)
        assert late.fair_tag >= high_water


class TestPowerAccountant:
    def build(self, n=3, budget=20.0, watts=10.0):
        sim = Simulator()
        disks = {f"d{i}": SimulatedDisk(sim, f"d{i}") for i in range(n)}
        for disk in disks.values():
            disk.spin_down()
        return sim, disks, PowerAccountant(disks, budget, watts)

    def test_grants_reserve_watts(self):
        _, _, power = self.build()
        assert power.in_use_watts() == 0.0
        assert power.can_afford("d0")
        power.grant("d0")
        assert power.granted("d0")
        assert power.in_use_watts() == 10.0
        power.grant("d1")
        assert power.in_use_watts() == 20.0
        assert not power.can_afford("d2")  # 30 W > 20 W budget

    def test_spinning_disk_costs_nothing_extra(self):
        sim, disks, power = self.build()
        sim.run_until_event(disks["d0"].spin_up())
        assert power.drawing("d0")
        assert power.cost_of("d0") == 0.0
        assert power.in_use_watts() == 10.0

    def test_grant_retired_once_disk_draws(self):
        sim, disks, power = self.build()
        power.grant("d0")
        sim.run_until_event(disks["d0"].spin_up())
        # The observed draw replaces the reservation: still one disk.
        assert power.in_use_watts() == 10.0
        assert not power.granted("d0")

    def test_release_frees_the_reservation(self):
        _, _, power = self.build()
        power.grant("d0")
        power.release("d0")
        assert power.in_use_watts() == 0.0

    def test_rejects_nonpositive_budget(self):
        sim = Simulator()
        disks = {"d0": SimulatedDisk(sim, "d0")}
        with pytest.raises(ValueError):
            PowerAccountant(disks, 0.0, 10.0)
        with pytest.raises(ValueError):
            PowerAccountant(disks, 10.0, -1.0)


class TestSchedulers:
    def entry(self, disk_id, deadline=60.0, arrival=0.0, oldest=0, count=4):
        return PendingDisk(
            disk_id=disk_id,
            count=count,
            earliest_arrival=arrival,
            earliest_deadline=deadline,
            oldest_request_id=oldest,
            min_fair_tag=0.0,
        )

    def test_batch_spreads_across_failure_units_first(self):
        hosts = {"d0": "hostA", "d1": "hostA", "d2": "hostB"}
        scheduler = ColdReadBatchScheduler()
        ordered = scheduler.order(
            [self.entry("d0"), self.entry("d1"), self.entry("d2")],
            busy_hosts=["hostA"],
            host_of=hosts.get,
        )
        assert ordered[0].disk_id == "d2"  # only idle failure unit

    def test_batch_is_earliest_deadline_first(self):
        scheduler = ColdReadBatchScheduler()
        ordered = scheduler.order(
            [self.entry("d0", deadline=90.0), self.entry("d1", deadline=30.0)],
            busy_hosts=[],
            host_of=lambda disk_id: None,
        )
        assert [e.disk_id for e in ordered] == ["d1", "d0"]

    def test_batch_limit_caps_at_max_batch(self):
        scheduler = ColdReadBatchScheduler(max_batch=8)
        assert scheduler.batch_limit(self.entry("d0", count=3)) == 3
        assert scheduler.batch_limit(self.entry("d0", count=50)) == 8
        assert not scheduler.head_of_line

    def test_fifo_is_arrival_ordered_singletons(self):
        scheduler = FifoScheduler()
        ordered = scheduler.order(
            [self.entry("d0", oldest=7), self.entry("d1", oldest=2)],
            busy_hosts=["hostA"],
            host_of=lambda disk_id: "hostA",
        )
        assert [e.disk_id for e in ordered] == ["d1", "d0"]
        assert scheduler.batch_limit(self.entry("d0", count=50)) == 1
        assert scheduler.head_of_line

    def test_make_scheduler(self):
        assert make_scheduler("batch", max_batch=4).max_batch == 4
        assert make_scheduler("fifo").name == "fifo"
        with pytest.raises(ValueError):
            make_scheduler("lifo")
        with pytest.raises(ValueError):
            ColdReadBatchScheduler(max_batch=0)


class TestTypedApi:
    def test_object_ref_validates(self):
        with pytest.raises(ValueError):
            ObjectRef("", 0, 1)
        with pytest.raises(ValueError):
            ObjectRef("/unit0/disk0/space0", -1, 1)
        with pytest.raises(ValueError):
            ObjectRef("/unit0/disk0/space0", 0, 0)
        ref = ObjectRef("/unit0/disk0/space0", 4, 16, object_id="obj")
        assert ref.end == 20

    def test_read_range_validates_window(self):
        ref = ObjectRef("/unit0/disk0/space0", 100, 50)
        with pytest.raises(ValueError):
            ReadRange("t0", ref, start=-1, length=10)
        with pytest.raises(ValueError):
            ReadRange("t0", ref, start=0, length=0)
        with pytest.raises(ValueError):
            ReadRange("t0", ref, start=45, length=10)  # past ref.end

    def test_resolve_op_shapes(self):
        ref = ObjectRef("/unit0/disk0/space0", 100, 50)
        assert resolve_op(ReadObject("t0", ref)) == (ref.space_id, 100, 50, True)
        assert resolve_op(WriteObject("t0", ref)) == (ref.space_id, 100, 50, False)
        # A range read is absolute: ref.offset + start, for length.
        assert resolve_op(ReadRange("t0", ref, start=10, length=5)) == (
            ref.space_id,
            110,
            5,
            True,
        )


class TestCoalesceBatch:
    def req(self, rid, offset, size, is_read=True, disk="disk0"):
        return GatewayRequest(
            request_id=rid,
            tenant="t0",
            space_id=f"/unit0/{disk}/space0",
            disk_id=disk,
            offset=offset,
            size=size,
            is_read=is_read,
            arrival=0.0,
            deadline=60.0,
        )

    def test_adjacent_and_overlapping_reads_merge(self):
        batch = [
            self.req(0, 0, 100),
            self.req(1, 100, 100),  # adjacent
            self.req(2, 150, 100),  # overlapping
        ]
        passes = coalesce_batch(batch)
        assert len(passes) == 1
        only = passes[0]
        assert isinstance(only, DiskPass)
        assert (only.offset, only.size) == (0, 250)
        assert only.end == 250
        assert [r.request_id for r in only.requests] == [0, 1, 2]

    def test_gap_window_bridges_nearby_reads(self):
        batch = [self.req(0, 0, 100), self.req(1, 150, 100)]
        assert len(coalesce_batch(batch, gap_bytes=0)) == 2
        merged = coalesce_batch(batch, gap_bytes=50)
        assert len(merged) == 1
        assert (merged[0].offset, merged[0].size) == (0, 250)

    def test_writes_never_merge(self):
        batch = [
            self.req(0, 0, 100, is_read=False),
            self.req(1, 100, 100, is_read=False),
        ]
        passes = coalesce_batch(batch, gap_bytes=1 * MB)
        assert len(passes) == 2
        assert all(not p.is_read for p in passes)

    def test_distinct_spaces_never_merge(self):
        batch = [
            self.req(0, 0, 100, disk="disk0"),
            self.req(1, 0, 100, disk="disk1"),
        ]
        assert len(coalesce_batch(batch, gap_bytes=1 * MB)) == 2

    def test_unmerged_batch_preserves_legacy_order(self):
        batch = [
            self.req(0, 5 * MB, 100),
            self.req(1, 0, 100),
            self.req(2, 2 * MB, 100, is_read=False),
        ]
        passes = coalesce_batch(batch)
        assert [p.requests[0].request_id for p in passes] == [0, 1, 2]

    def test_pass_order_follows_earliest_member(self):
        batch = [
            self.req(0, 5 * MB, 100),
            self.req(1, 0, 100),
            self.req(2, 5 * MB + 100, 100),  # merges with request 0
        ]
        passes = coalesce_batch(batch)
        assert len(passes) == 2
        # The merged pass contains the batch's first request, so it
        # keeps the front position despite its higher offset.
        assert [r.request_id for r in passes[0].requests] == [0, 2]
        assert [r.request_id for r in passes[1].requests] == [1]


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="")
        with pytest.raises(ValueError):
            TenantSpec(name="t", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", read_fraction=1.5)
        with pytest.raises(ValueError):
            TenantSpec(name="t", max_queue_depth=0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", object_sizes=())
        with pytest.raises(ValueError):
            TenantSpec(name="t", object_sizes=((0, 1.0),))

    def test_arrival_rate_is_users_times_rate(self):
        spec = TenantSpec(name="t", users=2_000_000, rate_per_user=1e-6)
        assert spec.arrival_rate == pytest.approx(2.0)

    def test_size_mix_mapping(self):
        spec = TenantSpec(name="t", object_sizes=((100, 1.0), (200, 3.0)))
        draw = OpenLoopTrafficGenerator._draw_size
        assert draw(spec, 0.0) == 100
        assert draw(spec, 0.2) == 100
        assert draw(spec, 0.5) == 200
        assert draw(spec, 1.0) == 200


# -- integration over a real deployment ---------------------------------

TENANT = TenantSpec(name="t0", weight=1.0, slo_seconds=120.0, max_queue_depth=64)


def build_gateway(scheduler="batch", tenants=(TENANT,), seed=7, **config_kwargs):
    """A settled 16-disk deployment fronted by a gateway, disks cold."""
    dep = build_deployment(config=DeploymentConfig(seed=seed))
    dep.settle(15.0)
    objects, spaces = mount_gateway_spaces(dep, 64 * MB)
    for disk_id in sorted(dep.disks):
        dep.disks[disk_id].spin_down()
    gateway = Gateway(
        dep.sim,
        tenants,
        GatewayConfig(scheduler=scheduler, **config_kwargs),
    )
    gateway.attach(objects, spaces, dep.disks, host_of=dep.host_of_disk)
    gateway.start()
    return dep, gateway, objects


def drain(dep, gateway, cap=300.0):
    deadline = dep.sim.now + cap
    # Always step once so same-timestep call_in submissions land first.
    dep.sim.run(until=dep.sim.now + 1.0)
    while not gateway.drained() and dep.sim.now < deadline:
        dep.sim.run(until=dep.sim.now + 5.0)
    assert gateway.drained(), "gateway failed to drain its queues"


class TestGatewayDispatch:
    def test_burst_to_one_disk_costs_one_spin_up(self):
        """The §IV-F bet: a batch amortizes a single spin-up."""
        dep, gateway, objects = build_gateway("batch")
        target = objects[0]
        requests = []

        def burst():
            for i in range(6):
                requests.append(
                    gateway.submit(ReadObject("t0", ObjectRef(target.space_id, i * MB, 1 * MB)))
                )

        dep.sim.call_in(0.0, burst)
        drain(dep, gateway)
        assert gateway.stats.admitted == 6
        assert gateway.stats.completed == 6
        assert gateway.stats.batches == 1
        assert gateway.spin_ups() == 1
        assert all(r.state is RequestState.COMPLETED for r in requests)
        assert all(r.attempts == 1 for r in requests)
        assert all(r.latency is not None and r.latency > 8.0 for r in requests)

    def test_admission_bound_rejects_overflow(self):
        tenant = TenantSpec(name="t0", slo_seconds=120.0, max_queue_depth=4)
        dep, gateway, objects = build_gateway("batch", tenants=(tenant,))
        target = objects[0]
        rejects = []

        def burst():
            for i in range(6):
                try:
                    gateway.submit(ReadObject("t0", ObjectRef(target.space_id, 0, 1 * MB)))
                except QueueFullError as exc:
                    rejects.append(exc)

        dep.sim.call_in(0.0, burst)
        drain(dep, gateway)
        assert len(rejects) == 2
        assert gateway.stats.rejected == 2
        assert gateway.stats.admitted == 4
        assert gateway.stats.completed == 4
        assert gateway.stats.per_tenant["t0"].rejected == 2

    def test_unknown_space_is_a_gateway_error(self):
        dep, gateway, _ = build_gateway("batch")
        with pytest.raises(GatewayError):
            gateway.submit(ReadObject("t0", ObjectRef("/unit9/disk99/space0", 0, 1 * MB)))

    def test_deadline_stamped_from_tenant_slo(self):
        tenant = TenantSpec(name="t0", slo_seconds=1.0, max_queue_depth=64)
        dep, gateway, objects = build_gateway("batch", tenants=(tenant,))
        target = objects[0]
        holder = []
        dep.sim.call_in(
            0.0,
            lambda: holder.append(
                gateway.submit(ReadObject("t0", ObjectRef(target.space_id, 0, 1 * MB)))
            ),
        )
        drain(dep, gateway)
        req = holder[0]
        assert req.deadline == pytest.approx(req.arrival + 1.0)
        # A cold read pays the 8s spin-up, so a 1s SLO must be missed.
        assert req.missed_slo()
        assert gateway.stats.slo_misses == 1

    def test_power_budget_bounds_concurrent_spinning(self):
        """With a one-disk budget, at most one disk may draw power at
        any sampled instant, yet all four disks' work completes."""
        dep, gateway, objects = build_gateway(
            "batch", power_budget_watts=8.0, watts_per_disk=8.0
        )
        targets = objects[:4]

        def burst():
            for target in targets:
                gateway.submit(ReadObject("t0", ObjectRef(target.space_id, 0, 1 * MB)))

        dep.sim.call_in(0.0, burst)
        samples = []
        drawing_states = (
            DiskPowerState.SPINNING_UP,
            DiskPowerState.IDLE,
            DiskPowerState.ACTIVE,
        )

        def sampler():
            while True:
                spinning = sum(
                    1
                    for disk_id in sorted(dep.disks)
                    if dep.disks[disk_id].power_state in drawing_states
                )
                samples.append(spinning)
                yield dep.sim.timeout(0.5)

        dep.sim.process(sampler())
        drain(dep, gateway)
        assert gateway.stats.completed == 4
        assert max(samples) <= 1
        # Serialized across four cold disks: four separate spin-ups,
        # freed in between by the dispatcher's reclaim step.
        assert gateway.spin_ups() == 4
        assert gateway.stats.reclaim_spin_downs >= 1

    def test_metrics_flow_through_registry(self):
        registry = MetricsRegistry()
        dep = build_deployment(
            config=DeploymentConfig(seed=7), metrics=registry
        )
        dep.settle(15.0)
        objects, spaces = mount_gateway_spaces(dep, 64 * MB)
        for disk_id in sorted(dep.disks):
            dep.disks[disk_id].spin_down()
        gateway = Gateway(dep.sim, (TENANT,), GatewayConfig())
        gateway.attach(objects, spaces, dep.disks, host_of=dep.host_of_disk)
        gateway.start()
        target = objects[0]
        dep.sim.call_in(
            0.0, lambda: gateway.submit(ReadObject("t0", ObjectRef(target.space_id, 0, 1 * MB)))
        )
        drain(dep, gateway)
        counters = registry.counters()
        assert counters["gateway.submitted"].value == 1
        assert counters["gateway.completed"].value == 1
        assert counters["gateway.batches"].value == 1
        histograms = registry.histograms()
        assert histograms["gateway.latency_seconds"].count == 1
        assert histograms["gateway.latency_seconds.t0"].count == 1
        assert histograms["gateway.batch_size"].count == 1

    def test_lifecycle_guards(self):
        dep = build_deployment(config=DeploymentConfig(seed=7))
        dep.settle(15.0)
        gateway = Gateway(dep.sim, (TENANT,), GatewayConfig())
        with pytest.raises(GatewayError):
            gateway.start()  # attach() must come first
        with pytest.raises(ValueError):
            Gateway(dep.sim, (), GatewayConfig())
        with pytest.raises(ValueError):
            Gateway(dep.sim, (TENANT, TENANT), GatewayConfig())


class TestLegacySubmitShim:
    def test_positional_submit_warns_and_still_works(self):
        """The pre-§12 positional shape keeps working but deprecates."""
        dep, gateway, objects = build_gateway("batch")
        target = objects[0]
        holder = []

        def legacy_submit():
            with pytest.warns(DeprecationWarning):
                holder.append(
                    gateway.submit("t0", target.space_id, 0, 1 * MB)
                )
            with pytest.warns(DeprecationWarning):
                holder.append(
                    gateway.submit(
                        space_id=target.space_id,
                        offset=1 * MB,
                        size=1 * MB,
                        is_read=False,
                        tenant="t0",
                    )
                )

        dep.sim.call_in(0.0, legacy_submit)
        drain(dep, gateway)
        read, write = holder
        assert read.state is RequestState.COMPLETED
        assert write.state is RequestState.COMPLETED
        assert read.is_read and not write.is_read
        # The shim adapts onto the typed path: the request carries a ref.
        assert read.ref == ObjectRef(target.space_id, 0, 1 * MB)
        assert write.ref == ObjectRef(target.space_id, 1 * MB, 1 * MB)

    def test_mixed_shapes_are_rejected(self):
        dep, gateway, objects = build_gateway("batch")
        target = objects[0]
        op = ReadObject("t0", ObjectRef(target.space_id, 0, 1 * MB))
        with pytest.raises(TypeError):
            gateway.submit(op, target.space_id, 0, 1 * MB)
        with pytest.raises(TypeError):
            gateway.submit()
        with pytest.raises(TypeError):
            gateway.submit("t0", target.space_id)  # missing offset/size

    def test_typed_submit_does_not_warn(self):
        dep, gateway, objects = build_gateway("batch")
        target = objects[0]
        holder = []

        def typed_submit():
            holder.append(
                gateway.submit(ReadObject("t0", ObjectRef(target.space_id, 0, 1 * MB)))
            )

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            dep.sim.call_in(0.0, typed_submit)
            drain(dep, gateway)
        assert holder[0].state is RequestState.COMPLETED


class TestTrafficGenerator:
    def test_trace_replay_preserves_times_and_sizes(self):
        dep, gateway, objects = build_gateway("batch")
        generator = OpenLoopTrafficGenerator(dep.sim, gateway, dep.rng)
        seen = []
        submit = gateway.submit

        def spy(*args, **kwargs):
            req = submit(*args, **kwargs)
            seen.append(req)
            return req

        gateway.submit = spy
        start = dep.sim.now
        generator.replay(
            "t0",
            [
                TraceArrival(time=start + 2.5, object_index=1, size=2 * MB),
                TraceArrival(time=start + 1.0, object_index=0, size=1 * MB),
            ],
        )
        drain(dep, gateway)
        assert generator.stats["t0"].submitted == 2
        assert [r.arrival for r in seen] == [start + 1.0, start + 2.5]
        assert [r.size for r in seen] == [1 * MB, 2 * MB]
        assert gateway.stats.completed == 2

    def test_open_loop_rate_scales_with_users(self):
        """Doubling the logical user count doubles offered load without
        adding simulation processes (one arrival loop per tenant)."""

        def offered(users):
            tenant = TenantSpec(
                name="t0",
                users=users,
                rate_per_user=0.01,
                slo_seconds=300.0,
                max_queue_depth=10_000,
            )
            dep, gateway, _ = build_gateway("batch", tenants=(tenant,), seed=9)
            generator = OpenLoopTrafficGenerator(dep.sim, gateway, dep.rng)
            processes = generator.start(60.0)
            assert len(processes) == 1
            dep.sim.run(until=dep.sim.now + 60.0)
            return generator.stats["t0"].submitted

        low, high = offered(100), offered(200)  # 1 req/s vs 2 req/s
        assert 30 < low < 90
        assert 90 < high < 180
        assert 1.5 < high / low < 3.0

    def test_rejections_counted_not_raised(self):
        """The open-loop generator sheds rejected arrivals and keeps
        offering (no backpressure into the arrival process)."""
        tenant = TenantSpec(
            name="t0",
            users=100,
            rate_per_user=0.05,  # 5 req/s against cold disks
            slo_seconds=300.0,
            max_queue_depth=8,
        )
        dep, gateway, _ = build_gateway("batch", tenants=(tenant,), seed=9)
        generator = OpenLoopTrafficGenerator(dep.sim, gateway, dep.rng)
        generator.start(30.0)
        dep.sim.run(until=dep.sim.now + 30.0)
        stats = generator.stats["t0"]
        assert stats.submitted == gateway.stats.admitted
        assert stats.rejected == gateway.stats.rejected
        assert stats.submitted + stats.rejected > 100


class TestGatewaySloExperiment:
    def test_run_point_is_deterministic(self):
        """Same seed, same scheduler: identical replay digest, identical
        metric-dump bytes, identical summary."""

        def once():
            digest = EventDigest()
            registry = MetricsRegistry()
            summary = gateway_slo.run_point(
                "batch",
                seed=5,
                duration=30.0,
                detect_races=True,
                event_digest=digest,
                metrics=registry,
            )
            races = summary.pop("races")
            return digest.hexdigest(), export_json(registry), summary, races

        first = once()
        second = once()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]
        assert first[3] == [] and second[3] == []

    def test_experiment_contract(self):
        experiment = gateway_slo.EXPERIMENT
        assert experiment.name == "gateway_slo"
        assert "seed" in experiment.params
        assert experiment.paper_ref
