"""Tests asserting each paper experiment reproduces the right shape."""

import pytest

from repro.experiments import (
    ablations,
    duplex,
    figure5,
    figure6,
    hdfs_switch,
    host_failover,
    table1,
    table2,
    table3,
    table4,
    table5,
)


class TestQuickTables:
    def test_table1_rows_and_claims(self):
        result = table1.run()
        assert len(result["rows"]) == 5
        assert result["capex_saving_vs_backblaze"] == pytest.approx(0.24, abs=0.03)
        assert result["attex_saving_vs_backblaze"] == pytest.approx(0.55, abs=0.04)

    def test_table2_within_tolerance(self):
        result = table2.run()
        assert len(result["rows"]) == 36
        assert result["worst_error"] <= 0.12

    def test_table3_measured_matches_profiles(self):
        result = table3.run()
        sata = result["measured"]["SATA"]
        usb = result["measured"]["USB bridge"]
        assert sata == pytest.approx((0.05, 4.71, 6.66))
        assert usb == pytest.approx((1.56, 5.76, 7.56))

    def test_table4_tight(self):
        result = table4.run()
        assert result["worst_error"] <= 0.05

    def test_table5_ordering_and_tolerance(self):
        result = table5.run()
        assert result["ordering_holds"]
        assert result["worst_error"] <= 0.15

    def test_duplex_hits_paper_numbers(self):
        result = duplex.run()
        assert result["per_port_mb_s"] == pytest.approx(540.0, rel=0.01)
        assert result["aggregate_mb_s"] == pytest.approx(2160.0, rel=0.01)

    def test_mains_render(self):
        for module in (table1, table2, table3, table4, table5, duplex):
            text = module.main()
            assert isinstance(text, str) and len(text) > 50


class TestFigure5:
    def test_anchors_hold(self):
        result = figure5.run()
        assert all(result["anchors"].values()), result["anchors"]

    def test_series_shapes(self):
        result = figure5.run()
        series = result["series_mb_per_s"]
        # Large sequential saturates at the 300 MB/s root port.
        assert series["4MB-S-R"][-1] == pytest.approx(300.0, rel=0.01)
        # Random 4KB is seek-bound and tiny, far from any fabric limit.
        assert series["4KB-R-R"][-1] < 20.0


class TestFigure6:
    def test_part1_grows_with_batch(self):
        small = figure6.run_single(1, seed=1)
        large = figure6.run_single(4, seed=2)
        assert large["part1"] > small["part1"]

    def test_parts_two_three_small(self):
        trial = figure6.run_single(2, seed=3)
        assert trial["part2"] < 2.0
        assert trial["part3"] < 2.0

    def test_total_is_seconds_scale(self):
        trial = figure6.run_single(4, seed=4)
        assert 2.0 < trial["total"] < 10.0


class TestHostFailover:
    def test_single_trial_near_paper(self):
        trial = host_failover.run_single("host1", seed=5)
        assert trial["disks_moved"] == 4
        # Paper: 5.8 s. Same order of magnitude required.
        assert trial["reattach_seconds"] < 12.0
        assert trial["service_resumed_seconds"] < 30.0


class TestHdfsSwitch:
    def test_anchors(self):
        result = hdfs_switch.run()
        assert all(result["anchors"].values()), result["anchors"]
        assert result["bytes_written"] == result["bytes_read"]


class TestReliabilityExperiment:
    def test_estimates_without_full_run(self):
        from repro.experiments.reliability import _availability, _scrubbing

        availability = _availability()
        assert availability["ustore"]["nines"] > availability["single_attached"]["nines"]
        scrubbing = _scrubbing()
        latencies = scrubbing["detection_latency_hours"]
        assert latencies["6h"] < latencies["24h"] < latencies["168h"]


class TestAblations:
    def test_switch_placement_tradeoff(self):
        result = ablations.switch_placement_ablation()
        leaf = result["leaf_switched"]
        upper = result["upper_switched"]
        # The paper's motivation for switching higher: less hardware...
        assert upper["switches"] < leaf["switches"]
        # ...at the price of a bigger blast radius when a hub dies.
        assert upper["worst_hub_blast_radius"] >= leaf["worst_hub_blast_radius"]

    def test_fabric_width_costs_hardware(self):
        result = ablations.fabric_width_ablation()
        assert result["4-way"]["switches"] > result["2-way"]["switches"]
        assert result["4-way"]["hosts_reachable_per_disk"] == 4

    def test_allocation_policy_prevents_sharing(self):
        result = ablations.allocation_policy_ablation(num_services=3, spaces_per_service=4)
        paper = result["paper_rules"]
        random = result["random"]
        assert paper["disks_shared_by_services"] <= random["disks_shared_by_services"]
        assert paper["disks_shared_by_services"] == 0

    def test_adaptive_policy_reduces_spin_ups(self):
        result = ablations.spin_down_policy_ablation(hours=12.0)
        assert result["adaptive"]["spin_ups"] < result["fixed"]["spin_ups"]
        # Both save energy against never spinning down.
        assert result["fixed"]["energy_wh"] < result["always_on_energy_wh"]

    def test_heartbeat_timeout_monotone(self):
        result = ablations.heartbeat_timeout_ablation(timeouts=(1.0, 4.0))
        assert result[1.0]["all_disks_moved"] and result[4.0]["all_disks_moved"]
        assert result[1.0]["recovery_seconds"] < result[4.0]["recovery_seconds"]
