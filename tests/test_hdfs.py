"""Tests for the mini-HDFS overlay on UStore (§VII-B)."""

import pytest

from repro.cluster import build_deployment
from repro.fabric import SwitchConflict, plan_switches
from repro.hdfs import build_hdfs_on_ustore
from repro.net import RpcClient
from repro.workload import MB


@pytest.fixture(scope="module")
def stack():
    dep = build_deployment()
    dep.settle(15.0)
    hdfs = dep.sim.run_until_event(dep.sim.process(build_hdfs_on_ustore(dep)))
    dep.settle(3.0)
    return dep, hdfs


def fresh_stack():
    dep = build_deployment()
    dep.settle(15.0)
    hdfs = dep.sim.run_until_event(dep.sim.process(build_hdfs_on_ustore(dep)))
    dep.settle(3.0)
    return dep, hdfs


class TestClusterBuild:
    def test_three_live_datanodes(self, stack):
        dep, hdfs = stack
        assert hdfs.namenode.live_datanodes() == ["dn0", "dn1", "dn2"]

    def test_datanodes_on_distinct_disks(self, stack):
        dep, hdfs = stack
        disks = {hdfs.backing_disk_of(d) for d in hdfs.datanodes}
        assert len(disks) == 3

    def test_spaces_are_host_local(self, stack):
        """Locality hints put each datanode's disk on its own host."""
        dep, hdfs = stack
        hosts = dep.fabric.hosts()
        for index, dn_id in enumerate(sorted(hdfs.datanodes)):
            disk = hdfs.backing_disk_of(dn_id)
            assert dep.fabric.attached_host(disk) == hosts[index + 1]


class TestReadWrite:
    def test_write_and_read_round_trip(self):
        dep, hdfs = fresh_stack()
        client = hdfs.new_client("app")

        def scenario():
            report = yield from client.write_file("/f", 96 * MB)
            result = yield from client.read_file("/f")
            return report, result

        report, result = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert report.bytes_written == 96 * MB
        assert result["bytes_read"] == 96 * MB
        assert report.errors == 0

    def test_blocks_are_replicated_three_ways(self):
        dep, hdfs = fresh_stack()
        client = hdfs.new_client("app")

        def scenario():
            yield from client.write_file("/f", 96 * MB)

        dep.sim.run_until_event(dep.sim.process(scenario()))
        for block in hdfs.namenode.blocks.values():
            assert len(block.replicas) == 3

    def test_multi_block_file(self):
        dep, hdfs = fresh_stack()
        client = hdfs.new_client("app")

        def scenario():
            report = yield from client.write_file("/f", 130 * MB)  # 3 blocks
            return report

        report = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert len(hdfs.namenode.files["/f"]) == 3

    def test_duplicate_create_rejected(self):
        dep, hdfs = fresh_stack()
        client = hdfs.new_client("app")
        from repro.net import RemoteError

        def scenario():
            yield from client.write_file("/f", 4 * MB)
            yield from client.write_file("/f", 4 * MB)

        with pytest.raises(RemoteError, match="FileExistsError"):
            dep.sim.run_until_event(dep.sim.process(scenario()))


def conflict_free_target(dep, disk):
    current = dep.fabric.attached_host(disk)
    for host in dep.fabric.reachable_hosts(disk):
        if host == current:
            continue
        try:
            plan_switches(dep.fabric, [(disk, host)])
            return host
        except SwitchConflict:
            continue
    raise AssertionError(f"no conflict-free target for {disk}")


class TestDiskSwitchDuringWrite:
    """The §VII-B experiment: a switch is a transient hiccup, not a rebuild."""

    def test_write_survives_switch(self):
        dep, hdfs = fresh_stack()
        sim = dep.sim
        client = hdfs.new_client("app")
        disk = hdfs.backing_disk_of("dn0")
        target = conflict_free_target(dep, disk)
        master = dep.active_master().address
        rpc = RpcClient(sim, dep.network, "opctl")

        def migrate():
            yield sim.timeout(5.0)
            yield from rpc.call(master, "master.migrate_disk", disk, target, timeout=60.0)

        sim.process(migrate())

        def write():
            return (yield from client.write_file("/big", 192 * MB))

        report = sim.run_until_event(sim.process(write()))
        assert report.bytes_written == 192 * MB
        # The client saw at most a seconds-long hiccup: either an error
        # + retry or one slow packet, never a failed write.
        assert report.slowest_packet < 15.0
        assert report.slowest_packet > 0.5 or report.errors > 0
        # And the disk really moved.
        assert dep.fabric.attached_host(disk) == target

    def test_reads_not_interrupted_by_switch(self):
        """§VII-B: reads pick another replica; no interruption at all."""
        dep, hdfs = fresh_stack()
        sim = dep.sim
        client = hdfs.new_client("app")

        def write():
            return (yield from client.write_file("/big", 96 * MB))

        sim.run_until_event(sim.process(write()))
        disk = hdfs.backing_disk_of("dn0")
        target = conflict_free_target(dep, disk)
        master = dep.active_master().address
        rpc = RpcClient(sim, dep.network, "opctl")

        def migrate():
            yield sim.timeout(0.5)
            yield from rpc.call(master, "master.migrate_disk", disk, target, timeout=60.0)

        sim.process(migrate())

        def read():
            return (yield from client.read_file("/big"))

        result = sim.run_until_event(sim.process(read()))
        assert result["bytes_read"] == 96 * MB

    def test_datanode_crash_drops_from_pipeline(self):
        dep, hdfs = fresh_stack()
        sim = dep.sim
        client = hdfs.new_client("app")

        def crash_later():
            yield sim.timeout(3.0)
            hdfs.datanodes["dn0"].crash()

        sim.process(crash_later())

        def write():
            return (yield from client.write_file("/big", 128 * MB))

        report = sim.run_until_event(sim.process(write()))
        assert report.bytes_written == 128 * MB
        assert report.errors > 0
        assert report.pipelines_rebuilt >= 1
