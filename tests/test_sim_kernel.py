"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Container,
    Interrupt,
    Resource,
    RngRegistry,
    SimulationError,
    Simulator,
    Store,
    TimeSeries,
    Tracer,
)


class TestEventBasics:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_clock_custom_start(self):
        sim = Simulator(start_time=42.5)
        assert sim.now == 42.5

    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(3.5)
        sim.run()
        assert sim.now == 3.5

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_run_until_stops_early(self):
        sim = Simulator()
        sim.timeout(100.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_advances_past_empty_queue(self):
        sim = Simulator()
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_event_value_before_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_unhandled_failed_event_raises_at_processing(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError):
            sim.run()

    def test_defused_failed_event_is_silent(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        sim.run()

    def test_call_in_runs_callback(self):
        sim = Simulator()
        fired = []
        sim.call_in(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_call_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.call_at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_call_at_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_in(3.0, lambda: order.append("c"))
        sim.call_in(1.0, lambda: order.append("a"))
        sim.call_in(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.call_in(1.0, lambda lab=label: order.append(lab))
        sim.run()
        assert order == list("abcde")

    def test_max_events_guard(self):
        sim = Simulator()

        def rescheduler():
            sim.call_in(0.0, rescheduler)

        rescheduler()
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)


class TestProcesses:
    def test_process_waits_on_timeout(self):
        sim = Simulator()
        log = []

        def proc(sim):
            log.append(sim.now)
            yield sim.timeout(2.0)
            log.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert log == [0.0, 2.0]

    def test_process_return_value(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(1.0)
            return 99

        p = sim.process(child(sim))
        assert sim.run_until_event(p) == 99

    def test_process_waits_on_process(self):
        sim = Simulator()
        results = []

        def child(sim):
            yield sim.timeout(3.0)
            return "done"

        def parent(sim):
            value = yield sim.process(child(sim))
            results.append((sim.now, value))

        sim.process(parent(sim))
        sim.run()
        assert results == [(3.0, "done")]

    def test_yield_non_event_fails_loudly(self):
        sim = Simulator()

        def bad(sim):
            yield 42

        p = sim.process(bad(sim))
        p.defuse()
        sim.run()
        assert not p.ok
        assert isinstance(p.value, SimulationError)

    def test_process_exception_propagates_to_waiter(self):
        sim = Simulator()
        caught = []

        def failing(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("inner")

        def waiter(sim):
            try:
                yield sim.process(failing(sim))
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(waiter(sim))
        sim.run()
        assert caught == ["inner"]

    def test_interrupt_wakes_sleeping_process(self):
        sim = Simulator()
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        p = sim.process(sleeper(sim))
        sim.call_in(5.0, lambda: p.interrupt("wake up"))
        sim.run()
        assert log == [(5.0, "wake up")]

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(1.0)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_is_alive(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(1.0)

        p = sim.process(quick(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_yield_already_processed_event(self):
        sim = Simulator()
        log = []

        def proc(sim):
            ev = sim.timeout(0.0, value="x")
            yield sim.timeout(1.0)
            value = yield ev  # fired long ago
            log.append(value)

        sim.process(proc(sim))
        sim.run()
        assert log == ["x"]

    def test_all_of_collects_values(self):
        sim = Simulator()
        results = []

        def proc(sim):
            events = [sim.timeout(i, value=i) for i in (3, 1, 2)]
            values = yield sim.all_of(events)
            results.append((sim.now, values))

        sim.process(proc(sim))
        sim.run()
        assert results == [(3.0, [3, 1, 2])]

    def test_all_of_empty(self):
        sim = Simulator()
        gate = sim.all_of([])
        assert sim.run_until_event(gate) == []

    def test_any_of_returns_first(self):
        sim = Simulator()
        results = []

        def proc(sim):
            value = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
            results.append((sim.now, value))

        sim.process(proc(sim))
        sim.run()
        assert results == [(1.0, "fast")]


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        active = []

        def worker(sim, name):
            yield res.request()
            active.append(name)
            yield sim.timeout(10.0)
            res.release()

        for name in "abc":
            sim.process(worker(sim, name))
        sim.run(until=5.0)
        assert sorted(active) == ["a", "b"]
        sim.run()
        assert sorted(active) == ["a", "b", "c"]

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        grants = []

        def worker(sim, name, start):
            yield sim.timeout(start)
            yield res.request()
            grants.append(name)
            yield sim.timeout(1.0)
            res.release()

        sim.process(worker(sim, "first", 0.0))
        sim.process(worker(sim, "second", 0.1))
        sim.process(worker(sim, "third", 0.2))
        sim.run()
        assert grants == ["first", "second", "third"]

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_cancel_queued_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()  # take the slot
        queued = res.request()
        assert res.cancel(queued)
        assert res.queue_length == 0

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        got = store.get()
        assert sim.run_until_event(got) == "item"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        results = []

        def consumer(sim):
            item = yield store.get()
            results.append((sim.now, item))

        def producer(sim):
            yield sim.timeout(4.0)
            yield store.put("late")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert results == [(4.0, "late")]

    def test_predicate_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        store.put(3)
        got = store.get(lambda x: x % 2 == 0)
        assert sim.run_until_event(got) == 2
        assert list(store.items) == [1, 3]

    def test_bounded_capacity_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        store.put("a")
        blocked = store.put("b")
        sim.run()
        assert not blocked.triggered
        store.get()
        sim.run()
        assert blocked.triggered

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        values = [sim.run_until_event(store.get()) for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]


class TestContainer:
    def test_get_blocks_until_level(self):
        sim = Simulator()
        tank = Container(sim, capacity=10, init=0)
        got = tank.get(5)
        sim.run()
        assert not got.triggered
        tank.put(5)
        sim.run()
        assert got.triggered
        assert tank.level == 0

    def test_put_blocks_at_capacity(self):
        sim = Simulator()
        tank = Container(sim, capacity=10, init=10)
        blocked = tank.put(1)
        sim.run()
        assert not blocked.triggered
        tank.get(5)
        sim.run()
        assert blocked.triggered
        assert tank.level == 6

    def test_init_bounds_checked(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Container(sim, capacity=5, init=6)

    def test_negative_amounts_rejected(self):
        sim = Simulator()
        tank = Container(sim, capacity=5, init=1)
        with pytest.raises(SimulationError):
            tank.get(-1)
        with pytest.raises(SimulationError):
            tank.put(-1)


class TestRng:
    def test_streams_are_deterministic(self):
        a = RngRegistry(7).stream("disk").random()
        b = RngRegistry(7).stream("disk").random()
        assert a == b

    def test_streams_are_independent(self):
        reg = RngRegistry(7)
        first = reg.stream("disk").random()
        # Creating another stream must not perturb the first.
        reg2 = RngRegistry(7)
        reg2.stream("network")
        assert reg2.stream("disk").random() == first

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()

    def test_fork_is_deterministic_and_distinct(self):
        reg = RngRegistry(7)
        f1 = reg.fork("trial")
        f2 = RngRegistry(7).fork("trial")
        assert f1.master_seed == f2.master_seed
        assert f1.master_seed != reg.master_seed


class TestTrace:
    def test_tracer_records_with_time(self):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        sim.call_in(2.0, lambda: tracer.emit("chan", "hello", n=1))
        sim.run()
        assert len(tracer.records) == 1
        rec = tracer.records[0]
        assert rec.time == 2.0 and rec.channel == "chan" and rec.data == {"n": 1}

    def test_tracer_channel_filter(self):
        tracer = Tracer(lambda: 0.0)
        tracer.emit("a", "1")
        tracer.emit("b", "2")
        tracer.emit("a", "3")
        assert [r.message for r in tracer.channel("a")] == ["1", "3"]

    def test_tracer_disable(self):
        tracer = Tracer(lambda: 0.0)
        tracer.enabled = False
        tracer.emit("a", "dropped")
        assert tracer.records == []

    def test_tracer_subscriber(self):
        tracer = Tracer(lambda: 0.0)
        seen = []
        tracer.subscribe(lambda rec: seen.append(rec.message))
        tracer.emit("a", "x")
        assert seen == ["x"]

    def test_timeseries_stats(self):
        ts = TimeSeries("t")
        for t, v in [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]:
            ts.sample(t, v)
        assert ts.mean() == 2.5
        assert ts.minimum() == 1.0
        assert ts.maximum() == 4.0
        assert ts.percentile(50) == 2.5
        assert ts.last == 4.0

    def test_timeseries_percentile_bounds(self):
        ts = TimeSeries()
        ts.sample(0, 5.0)
        with pytest.raises(ValueError):
            ts.percentile(101)

    def test_timeseries_time_weighted_mean(self):
        ts = TimeSeries()
        ts.sample(0.0, 10.0)
        ts.sample(9.0, 0.0)
        # 9s at 10, 1s at 0 over [0, 10]
        assert ts.time_weighted_mean(end_time=10.0) == pytest.approx(9.0)

    def test_empty_timeseries(self):
        ts = TimeSeries()
        assert ts.mean() == 0.0
        assert ts.last is None
        assert len(ts) == 0
