"""Regression pin: batched Poisson arrivals == the per-call draw order.

``OpenLoopTrafficGenerator._poisson_loop`` precomputes arrivals in
batches (:data:`repro.gateway.tenants.ARRIVAL_BATCH`).  These tests
replay the *unbatched* reference implementation — one
``rand.expovariate`` / ``randrange`` / ``random`` call per event, in
the original order — against a stub gateway and assert the batched
generator submits a bit-identical sequence of operations at identical
simulated times for fixed seeds.
"""

from dataclasses import dataclass
from typing import List, Tuple

import pytest

from repro.gateway.api import ObjectRef, ReadObject, WriteObject
from repro.gateway.tenants import OpenLoopTrafficGenerator, TenantSpec
from repro.sim import RngRegistry, Simulator

MB = 1024 * 1024

TENANT = TenantSpec(
    name="archive",
    users=50,
    rate_per_user=0.2,
    read_fraction=0.7,
    object_sizes=((1 * MB, 3.0), (4 * MB, 1.0), (16 * MB, 0.5)),
)

#: (sim_time, tenant, space_id, offset, size, is_read)
Submission = Tuple[float, str, str, int, int, bool]


@dataclass(frozen=True)
class _StubObject:
    space_id: str
    region_bytes: int


class _StubGateway:
    """Just enough gateway for the traffic generator: static objects,
    never-rejecting submit that records every operation."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._objects = [
            _StubObject("space-a", 64 * MB),
            _StubObject("space-b", 48 * MB),
            _StubObject("space-c", 20 * MB),
        ]
        self.submissions: List[Submission] = []

    def objects(self) -> List[_StubObject]:
        return self._objects

    def tenant_specs(self) -> List[TenantSpec]:
        return [TENANT]

    def tenant(self, name: str) -> TenantSpec:
        assert name == TENANT.name
        return TENANT

    def submit(self, op) -> None:
        is_read = isinstance(op, ReadObject)
        assert is_read or isinstance(op, WriteObject)
        self.submissions.append(
            (self.sim.now, op.tenant, op.ref.space_id, op.ref.offset,
             op.ref.size, is_read)
        )


def _run_batched(seed: int, duration: float) -> List[Submission]:
    sim = Simulator()
    gateway = _StubGateway(sim)
    generator = OpenLoopTrafficGenerator(sim, gateway, RngRegistry(seed))
    generator.start(duration)
    sim.run()
    return gateway.submissions


def _run_reference(seed: int, duration: float) -> List[Submission]:
    """The pre-batching implementation, draw for draw."""
    sim = Simulator()
    gateway = _StubGateway(sim)
    spec = TENANT
    rand = RngRegistry(seed).stream(f"gateway.arrivals.{spec.name}")
    rate = spec.arrival_rate
    end = duration

    def loop():
        while True:
            gap = rand.expovariate(rate)
            if sim.now + gap > end:
                return
            yield sim.timeout(gap)
            objects = gateway.objects()
            obj = objects[rand.randrange(len(objects))]
            total = sum(share for _, share in spec.object_sizes)
            threshold = rand.random() * total
            cumulative = 0.0
            size = spec.object_sizes[-1][0]
            for candidate, share in spec.object_sizes:
                cumulative += share
                if threshold <= cumulative:
                    size = candidate
                    break
            blocks = max(1, obj.region_bytes // size)
            offset = rand.randrange(blocks) * size
            if offset + size > obj.region_bytes:
                offset = max(0, obj.region_bytes - size)
            is_read = rand.random() < spec.read_fraction
            ref = ObjectRef(space_id=obj.space_id, offset=offset, size=size)
            if is_read:
                gateway.submit(ReadObject(tenant=spec.name, ref=ref))
            else:
                gateway.submit(WriteObject(tenant=spec.name, ref=ref))

    sim.process(loop())
    sim.run()
    return gateway.submissions


@pytest.mark.parametrize("seed", [0, 7, 11, 42, 1234])
def test_batched_arrivals_match_per_call_reference(seed):
    batched = _run_batched(seed, duration=120.0)
    reference = _run_reference(seed, duration=120.0)
    assert len(batched) > 200, "workload too small to pin anything"
    assert batched == reference


def test_batched_arrivals_cross_batch_boundary():
    """A run long enough to consume several 128-arrival batches."""
    batched = _run_batched(3, duration=60.0)
    reference = _run_reference(3, duration=60.0)
    assert len(batched) > 2 * 128
    assert batched == reference


def test_stats_unchanged_by_batching():
    sim = Simulator()
    gateway = _StubGateway(sim)
    generator = OpenLoopTrafficGenerator(sim, gateway, RngRegistry(5))
    generator.start(30.0)
    sim.run()
    stats = generator.stats[TENANT.name]
    assert stats.submitted == len(gateway.submissions)
    assert stats.rejected == 0
