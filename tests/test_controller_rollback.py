"""Controller verification-timeout rollback (§IV-C step 3) and misc gaps."""

import pytest

from repro.cluster import ControllerConfig, DeploymentConfig, build_deployment
from repro.net import RemoteError, RpcClient
from repro.sim import Counter


class TestControllerRollback:
    def test_rollback_when_expected_connection_never_appears(self):
        """If the new host never detects the switched disk within the
        pre-set time, the Controller turns the switches back and reports
        the situation to the Master (§IV-C)."""
        from repro.cluster import MasterConfig

        config = DeploymentConfig(
            controller=ControllerConfig(verify_timeout=3.0, verify_poll_interval=0.5),
            # Keep the Master's failure detector out of this test: it
            # would (correctly) fail the crashed host's own disks over,
            # moving switches unrelated to the rollback under test.
            master=MasterConfig(heartbeat_timeout=10_000.0),
        )
        dep = build_deployment(config=config)
        dep.settle(15.0)
        states_before = {s.node_id: s.state for s in dep.fabric.switches}
        # Sabotage detection: the destination endpoint goes dark, so
        # usb_view polls fail and verification must time out.
        dep.endpoints["host2"].crash()
        rpc = RpcClient(dep.sim, dep.network, "rb-tester")

        def scenario():
            yield from rpc.call(
                "unit0.controller0",
                "controller.execute",
                [("disk0", "host2")],
                timeout=40.0,
            )

        with pytest.raises(RemoteError, match="rolled back"):
            dep.sim.run_until_event(dep.sim.process(scenario()))
        states_after = {s.node_id: s.state for s in dep.fabric.switches}
        assert states_after == states_before
        assert dep.controllers[0].rollbacks == 1
        assert dep.fabric.attached_host("disk0") == "host0"

    def test_disk_usable_after_rollback(self):
        from repro.cluster import MasterConfig

        config = DeploymentConfig(
            controller=ControllerConfig(verify_timeout=3.0, verify_poll_interval=0.5),
            master=MasterConfig(heartbeat_timeout=10_000.0),
        )
        dep = build_deployment(config=config)
        dep.settle(15.0)
        dep.endpoints["host2"].crash()
        rpc = RpcClient(dep.sim, dep.network, "rb-tester")

        def scenario():
            try:
                yield from rpc.call(
                    "unit0.controller0",
                    "controller.execute",
                    [("disk0", "host2")],
                    timeout=40.0,
                )
            except RemoteError:
                pass

        dep.sim.run_until_event(dep.sim.process(scenario()))
        dep.settle(10.0)
        # The disk bounced back to host0's view after the rollback.
        assert "disk0" in dep.bus.os_view("host0")


class TestMiscGaps:
    def test_counter(self):
        counter = Counter()
        counter.incr("a")
        counter.incr("a", 4)
        assert counter.get("a") == 5
        assert counter.get("missing") == 0
        assert counter.as_dict() == {"a": 5}
        with pytest.raises(ValueError):
            counter.incr("a", -1)

    def test_fabric_subtree_nodes(self):
        from repro.fabric import prototype_fabric

        fabric = prototype_fabric()
        members = fabric.subtree_nodes("port-h0")
        # Host0's subtree carries 4 disks, their bridges/switches, two
        # leaf hubs with switches, and the root hub.
        assert "disk0" in members and "roothub0" in members
        assert "disk4" not in members  # attached to host2

    def test_dual_tree_odd_disk_count(self):
        from repro.fabric import dual_tree_fabric, validate_fabric

        fabric = dual_tree_fabric(num_disks=7, num_hosts=2, fan_in=3)
        assert validate_fabric(fabric).ok

    def test_deployment_host_of_disk_helper(self):
        dep = build_deployment()
        assert dep.host_of_disk("disk0") == "host0"
