"""Tests for the reliability package: availability, rebuild, scrubbing."""

import pytest

from repro.cluster import build_deployment
from repro.disk import IoRequest, SimulatedDisk
from repro.reliability import (
    AvailabilityStudy,
    LatentErrorModel,
    MediaError,
    RebuildDrill,
    Scrubber,
    StudyParams,
    fabric_assisted_rebuild,
    network_rebuild,
)
from repro.sim import RngRegistry, Simulator
from repro.workload import MB

GB = 1024 * MB


class TestAvailabilityStudy:
    def test_ustore_beats_single_attached(self):
        study = AvailabilityStudy(StudyParams(horizon_years=50.0, trials=10), seed=3)
        results = study.run()
        single = results["single_attached"]
        ustore = results["ustore"]
        assert ustore.disk_downtime_hours_per_disk_year < (
            single.disk_downtime_hours_per_disk_year / 100
        )
        assert ustore.nines > single.nines + 1.5

    def test_single_attached_magnitude(self):
        """~3.5 failures/host-year x 2h repair ≈ 7 disk-downtime hours."""
        study = AvailabilityStudy(StudyParams(horizon_years=50.0, trials=10), seed=3)
        single = study.run()["single_attached"]
        assert 4.0 < single.disk_downtime_hours_per_disk_year < 11.0
        assert 2.5 < single.host_failures_per_year < 4.5

    def test_deterministic(self):
        a = AvailabilityStudy(StudyParams(horizon_years=10, trials=3), seed=9).run()
        b = AvailabilityStudy(StudyParams(horizon_years=10, trials=3), seed=9).run()
        assert a["ustore"].availability == b["ustore"].availability

    def test_zero_failover_delay_is_perfect(self):
        params = StudyParams(horizon_years=10, trials=3, failover_seconds=0.0)
        results = AvailabilityStudy(params, seed=4).run()
        # Only simultaneous whole-unit blackouts can hurt; with 4 hosts
        # and 2h repairs those are vanishingly rare at this horizon.
        assert results["ustore"].availability > 0.9999999


class TestRebuildEstimates:
    def test_network_bottlenecked_by_gbe(self):
        estimate = network_rebuild(3 * 10**12)
        assert estimate.rate_mb_s == pytest.approx(125.0, rel=0.01)
        assert estimate.network_bytes == 3 * 10**12

    def test_fabric_assisted_runs_at_disk_speed(self):
        estimate = fabric_assisted_rebuild(3 * 10**12)
        assert estimate.rate_mb_s > 170.0
        assert estimate.network_bytes == 0

    def test_fabric_wins_for_large_rebuilds(self):
        size = 3 * 10**12
        assert fabric_assisted_rebuild(size).seconds < network_rebuild(size).seconds

    def test_network_wins_for_tiny_rebuilds(self):
        """The 5 s switch overhead dominates tiny copies — a crossover
        the Master's policy would need to respect."""
        size = 64 * MB
        assert network_rebuild(size).seconds < fabric_assisted_rebuild(size).seconds


class TestRebuildDrill:
    def test_drill_fabric_vs_network(self):
        dep = build_deployment()
        dep.settle(15.0)
        drill = RebuildDrill(dep)
        # Rebuild from disk4 (host2) onto disk0's host (host0); disk4's
        # alternate leaf hub routes to roothub0, so the migration is
        # conflict-free.
        source, destination = "disk4", "disk0"
        assert dep.fabric.attached_host(source) != dep.fabric.attached_host(destination)

        def run(assisted):
            return (
                yield from drill.run(source, destination, 2 * GB, fabric_assisted=assisted)
            )

        network = dep.sim.run_until_event(dep.sim.process(run(False)))
        assert network["network_bytes"] == 2 * GB
        # Now the fabric-assisted drill: it migrates disk2 to host0.
        assisted = dep.sim.run_until_event(dep.sim.process(run(True)))
        assert assisted["network_bytes"] == 0
        assert assisted["switch_seconds"] > 0
        assert dep.fabric.attached_host(source) == dep.fabric.attached_host(destination)
        assert assisted["seconds"] < network["seconds"]


def make_lse_stack(annual_rate=50.0, seed=7):
    sim = Simulator()
    disk = SimulatedDisk(sim, "d0")
    model = LatentErrorModel(
        sim=sim, disk=disk, rng=RngRegistry(seed), annual_lse_rate=annual_rate
    )
    return sim, disk, model


class TestLatentErrors:
    def test_errors_accumulate_over_time(self):
        sim, disk, model = make_lse_stack(annual_rate=100.0)
        sim.run(until=0.5 * 365 * 24 * 3600.0)
        assert len(model.errors) > 10

    def test_clean_read_passes(self):
        sim, disk, model = make_lse_stack(annual_rate=0.001)

        def scenario():
            yield from model.read(0, 4 * MB)

        sim.run_until_event(sim.process(scenario()))

    def test_read_on_lse_raises(self):
        sim, disk, model = make_lse_stack()
        model.errors.add(0)  # first region

        def scenario():
            yield from model.read(0, 4 * MB)

        with pytest.raises(MediaError):
            sim.run_until_event(sim.process(scenario()))
        assert model.detected

    def test_repair_clears(self):
        sim, disk, model = make_lse_stack()
        model.errors.add(3)
        model.repair(3)
        assert 3 not in model.errors
        assert model.repaired


class TestScrubber:
    def test_scrub_detects_and_repairs(self):
        sim, disk, model = make_lse_stack(annual_rate=0.0001)
        model.errors.add(1)
        scrubber = Scrubber(
            sim,
            model,
            scrub_interval=3600.0,
            scan_bytes=64 * MB,
        )
        sim.run(until=2 * 3600.0 + 100.0)
        assert scrubber.passes_completed >= 1
        assert scrubber.errors_found >= 1
        assert 1 not in model.errors

    def test_shorter_interval_finds_errors_sooner(self):
        def detection_latency(interval):
            sim, disk, model = make_lse_stack(annual_rate=0.0001, seed=11)
            injected_at = 1000.0
            sim.call_in(injected_at, lambda: model.errors.add(0))
            Scrubber(sim, model, scrub_interval=interval, scan_bytes=64 * MB)
            sim.run(until=12 * 3600.0)
            assert model.detected, f"interval {interval}: never detected"
            return model.detected[0][0] - injected_at

        fast = detection_latency(1800.0)
        slow = detection_latency(7200.0)
        assert fast < slow
