"""Shardstore crash/remount regression: exactly-once, no metadata DB.

The contract under test: a host crash in the middle of a flush must not
lose or double-ack any object (the ClientLib remount retry is internal;
the gateway issues each flush write once), and after the soft-state
directory is dropped, ``recover()`` must rebuild it from media scans
alone so that **every acknowledged object** is retrievable exactly
once.  If that holds, the store genuinely needs no metadata database.
"""

import pytest

from repro.shardstore import ObjectNotFoundError, ObjectState
from repro.workload import KB

from tests.test_gateway import drain
from tests.test_shardstore import DATE, build_store

NUM_OBJECTS = 40


def ingest_then_crash(config_kwargs=None):
    """40 puts + flush_all; crash the host serving the first flush
    while its write is in flight; drain to completion."""
    dep, gateway, store = build_store(
        shards_per_day=4,
        shard_capacity=4 * (1 << 20),
        **(config_kwargs or {}),
    )
    records = []
    flushes = []

    def ingest():
        for i in range(NUM_OBJECTS):
            records.append(store.put(f"uid-{i}", DATE, 64 * KB))
        flushes.extend(store.flush_all())

    dep.sim.call_in(0.0, ingest)
    # Run to just past the 8s spin-up: the first flush write is in
    # flight when its endpoint dies.
    dep.sim.run(until=dep.sim.now + 8.05)
    assert gateway.outstanding() > 0, "crash must land mid-flush"
    host = dep.host_of_disk(flushes[0].disk_id)
    assert host is not None
    dep.crash_host(host)
    drain(dep, gateway)
    return dep, gateway, store, records, flushes


def test_mid_flush_crash_acks_every_object_exactly_once():
    dep, gateway, store, records, flushes = ingest_then_crash()

    # The crash was absorbed by the ClientLib remount: every flush
    # write completed on its single gateway attempt, and every object
    # it carried is acked durable exactly once.
    assert store.stats.accepted == NUM_OBJECTS
    assert store.stats.acked == NUM_OBJECTS
    assert store.stats.flush_failures == 0
    assert store.stats.flush_failed == 0
    assert all(f.attempts == 1 for f in flushes)
    assert all(r.state is ObjectState.ACKED for r in records)
    assert gateway.stats.failed == 0
    remounts = sum(
        space.stats.remounts for space in gateway._spaces.values()
    )
    assert remounts >= 1


def test_recovery_rebuilds_directory_from_media_alone():
    dep, gateway, store, records, _ = ingest_then_crash()
    assert store.directory_size() == NUM_OBJECTS

    # Lose the soft state, as a restart of the store node would.
    store.drop_directory()
    assert store.directory_size() == 0
    with pytest.raises(ObjectNotFoundError):
        store.get("uid-0", DATE)

    # Rebuild from media: one paid scan read per durable shard, no
    # other source consulted.
    scans = []
    dep.sim.call_in(0.0, lambda: scans.extend(store.recover()))
    drain(dep, gateway)
    assert store.stats.recovery_scans == len(scans) > 0
    assert all(s.attempts == 1 and s.failure is None for s in scans)
    assert store.directory_size() == NUM_OBJECTS

    # Every acknowledged object comes back exactly once.
    gets = []

    def retrieve():
        for i in range(NUM_OBJECTS):
            gets.append(store.get(f"uid-{i}", DATE))

    dep.sim.call_in(0.0, retrieve)
    drain(dep, gateway)
    assert store.stats.retrievals == NUM_OBJECTS
    assert store.stats.retrieval_failures == 0
    assert all(g.attempts == 1 and g.failure is None for g in gets)

    # The recovered directory agrees byte-for-byte with the original
    # pack-time placement (offsets never moved).
    by_uid = {r.uid: r for r in records}
    for get, i in zip(gets, range(NUM_OBJECTS)):
        record = by_uid[f"uid-{i}"]
        slot = store.slot_ref(record.shard)
        assert get.offset == slot.offset + record.offset_in_shard
        assert get.size == record.record_bytes
