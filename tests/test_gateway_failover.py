"""Gateway failure handling: endpoint death mid-batch.

The satellite contract: a host crash while a batch is being served must
surface as a ``SessionError``-triggered remount inside the ClientLib
mount path, and the gateway must neither lose nor double-issue any
queued request — every admitted request completes exactly once
(``attempts == 1``; attempts counts gateway-level issues, ClientLib
retries are internal to the space).
"""

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.gateway import (
    Gateway,
    GatewayConfig,
    ObjectRef,
    ReadObject,
    RequestState,
    TenantSpec,
    mount_gateway_spaces,
)
from repro.workload import MB

TENANT = TenantSpec(name="t0", weight=1.0, slo_seconds=600.0, max_queue_depth=64)


def build(seed=13, **config_kwargs):
    dep = build_deployment(config=DeploymentConfig(seed=seed))
    dep.settle(15.0)
    objects, spaces = mount_gateway_spaces(dep, 64 * MB)
    for disk_id in sorted(dep.disks):
        dep.disks[disk_id].spin_down()
    gateway = Gateway(
        dep.sim, (TENANT,), GatewayConfig(scheduler="batch", **config_kwargs)
    )
    gateway.attach(objects, spaces, dep.disks, host_of=dep.host_of_disk)
    gateway.start()
    return dep, gateway, objects, spaces


def drain(dep, gateway, cap=300.0):
    deadline = dep.sim.now + cap
    dep.sim.run(until=dep.sim.now + 1.0)
    while not gateway.drained() and dep.sim.now < deadline:
        dep.sim.run(until=dep.sim.now + 5.0)
    assert gateway.drained(), "gateway failed to drain after the crash"


def test_mid_batch_host_death_completes_exactly_once():
    dep, gateway, objects, spaces = build()
    target = objects[0]
    host = dep.host_of_disk(target.disk_id)
    assert host is not None
    requests = []

    def burst():
        for i in range(6):
            requests.append(
                gateway.submit(ReadObject("t0", ObjectRef(target.space_id, i * MB, 1 * MB)))
            )

    dep.sim.call_in(0.0, burst)
    # Run to just past the 8s spin-up: the batch is dispatched and
    # its first request is in flight when the endpoint dies.
    dep.sim.run(until=dep.sim.now + 8.05)
    assert gateway.outstanding() > 0, "crash must land mid-batch"
    dep.crash_host(host)
    drain(dep, gateway)

    assert gateway.stats.admitted == 6
    assert gateway.stats.completed == 6
    assert gateway.stats.failed == 0
    # Exactly once: the gateway issued each request a single time; the
    # retry after the crash happened inside the ClientLib remount.
    assert all(r.attempts == 1 for r in requests)
    assert all(r.state is RequestState.COMPLETED for r in requests)
    space = spaces[target.space_id]
    assert space.stats.remounts >= 1
    assert space.stats.errors_seen >= 1


def test_queued_work_behind_the_crash_is_not_lost():
    """With a one-disk power budget, batches for two disks on the dying
    host serialize: one is in flight at crash time, the other is still
    queued.  Both must complete exactly once after failover."""
    dep, gateway, objects, spaces = build(
        power_budget_watts=8.0, watts_per_disk=8.0
    )
    by_host = {}
    for obj in objects:
        by_host.setdefault(dep.host_of_disk(obj.disk_id), []).append(obj)
    host, victims = sorted(
        by_host.items(), key=lambda item: -len(item[1])
    )[0]
    assert len(victims) >= 2
    first, second = victims[0], victims[1]
    requests = []

    def burst():
        for target in (first, second):
            for i in range(3):
                requests.append(
                    gateway.submit(ReadObject("t0", ObjectRef(target.space_id, i * MB, 1 * MB)))
                )

    dep.sim.call_in(0.0, burst)
    dep.sim.run(until=dep.sim.now + 8.05)
    # One batch in flight, the other still queued behind the budget.
    assert gateway.queue.total_depth() > 0
    assert gateway.outstanding() > gateway.queue.total_depth()
    dep.crash_host(host)
    drain(dep, gateway)

    assert gateway.stats.admitted == 6
    assert gateway.stats.completed == 6
    assert gateway.stats.failed == 0
    assert all(r.attempts == 1 for r in requests)
    assert sum(space.stats.remounts for space in spaces.values()) >= 1


def test_requests_submitted_during_outage_complete():
    """Arrivals during the failover window queue up normally and are
    served once the cluster recovers."""
    dep, gateway, objects, spaces = build()
    target = objects[0]
    host = dep.host_of_disk(target.disk_id)
    requests = []

    def submit_one():
        requests.append(gateway.submit(ReadObject("t0", ObjectRef(target.space_id, 0, 1 * MB))))

    dep.sim.call_in(0.0, submit_one)
    dep.sim.run(until=dep.sim.now + 8.5)
    dep.crash_host(host)
    # Mid-outage arrival: the endpoint is dead but admission stays open.
    dep.sim.call_in(1.0, submit_one)
    drain(dep, gateway)
    assert gateway.stats.completed == 2
    assert gateway.stats.failed == 0
    assert all(r.attempts == 1 for r in requests)
