"""Integration tests for the full UStore management stack (Figure 3)."""

import pytest

from repro.cluster import (
    HostStatus,
    build_deployment,
    format_space_id,
    parse_space_id,
    space_znode_path,
    target_name,
)
from repro.workload import KB, MB


@pytest.fixture(scope="module")
def settled():
    """One settled deployment shared by read-only assertions."""
    dep = build_deployment()
    dep.settle(15.0)
    return dep


def fresh():
    dep = build_deployment()
    dep.settle(15.0)
    return dep


class TestNamespace:
    def test_space_id_round_trip(self):
        sid = format_space_id("unit0", "disk3", 5)
        assert sid == "/unit0/disk3/space5"
        assert parse_space_id(sid) == ("unit0", "disk3", 5)

    def test_bad_space_ids(self):
        with pytest.raises(ValueError):
            parse_space_id("/unit0/disk3")
        with pytest.raises(ValueError):
            parse_space_id("/unit0/disk3/blob5")
        with pytest.raises(ValueError):
            format_space_id("a/b", "disk0", 0)
        with pytest.raises(ValueError):
            format_space_id("unit0", "disk0", -1)

    def test_target_name(self):
        assert target_name("/unit0/disk3/space5") == "iqn.ustore:unit0.disk3.space5"

    def test_znode_path(self):
        assert space_znode_path("/unit0/disk3/space5") == (
            "/ustore/storalloc/unit0_disk3_space5"
        )


class TestBootstrap:
    def test_master_becomes_active(self, settled):
        assert settled.active_master() is not None

    def test_single_active_master(self, settled):
        actives = [m for m in settled.masters if m.active]
        assert len(actives) == 1

    def test_all_hosts_online(self, settled):
        master = settled.active_master()
        assert set(master.sysstat.online_hosts()) == {f"host{i}" for i in range(4)}

    def test_sysstat_matches_fabric(self, settled):
        master = settled.active_master()
        for disk_id, host in settled.fabric.attachment_map().items():
            assert master.sysstat.disk_to_host[disk_id] == host

    def test_endpoints_heartbeat(self, settled):
        assert all(e.heartbeats_sent > 0 for e in settled.endpoints.values())

    def test_hosts_have_ephemeral_znodes(self, settled):
        from repro.coord import Role

        leader = [r for r in settled.coord_replicas if r.role is Role.LEADER][0]
        assert set(leader.tree.get_children("/ustore/hosts")) == {
            f"host{i}" for i in range(4)
        }


class TestAllocation:
    def test_allocate_and_mount(self):
        dep = fresh()
        client = dep.new_client("app", service="svc1")

        def scenario():
            info = yield from client.allocate(64 * MB)
            space = yield from client.mount(info["space_id"])
            yield from space.write(0, 1 * MB)
            result = yield from space.read(0, 1 * MB)
            return info, space, result

        info, space, result = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert result["ok"]
        assert space.stats.reads == 1 and space.stats.writes == 1
        unit, disk, index = parse_space_id(info["space_id"])
        assert unit == "unit0" and index == 0

    def test_storalloc_persisted_in_coord(self):
        dep = fresh()
        client = dep.new_client("app", service="svc1")

        def scenario():
            info = yield from client.allocate(64 * MB)
            return info

        info = dep.sim.run_until_event(dep.sim.process(scenario()))
        dep.settle(3.0)
        from repro.coord import Role

        leader = [r for r in dep.coord_replicas if r.role is Role.LEADER][0]
        path = space_znode_path(info["space_id"])
        assert leader.tree.exists(path)
        assert leader.tree.get_data(path)["space_id"] == info["space_id"]

    def test_same_service_affinity(self):
        """§IV-A rule 1: a disk is preferentially filled by one service."""
        dep = fresh()
        client = dep.new_client("app", service="svc1")

        def scenario():
            first = yield from client.allocate(10 * MB)
            second = yield from client.allocate(10 * MB)
            return first, second

        first, second = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert parse_space_id(first["space_id"])[1] == parse_space_id(second["space_id"])[1]

    def test_different_services_get_different_disks(self):
        """§IV-A rule 1, contrapositive: avoid mixing services."""
        dep = fresh()
        a = dep.new_client("app-a", service="svc-a")
        b = dep.new_client("app-b", service="svc-b")

        def scenario():
            first = yield from a.allocate(10 * MB)
            second = yield from b.allocate(10 * MB)
            return first, second

        first, second = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert parse_space_id(first["space_id"])[1] != parse_space_id(second["space_id"])[1]

    def test_locality_hint(self):
        """§IV-A rule 2: prefer a disk near the client."""
        dep = fresh()
        client = dep.new_client("app", service="svc1")

        def scenario():
            info = yield from client.allocate(10 * MB, locality_hint="host3")
            return info

        info = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert info["host_id"] == "host3"

    def test_spaces_on_same_disk_do_not_overlap(self):
        dep = fresh()
        client = dep.new_client("app", service="svc1")

        def scenario():
            first = yield from client.allocate(10 * MB)
            second = yield from client.allocate(10 * MB)
            return first, second

        first, second = dep.sim.run_until_event(dep.sim.process(scenario()))
        master = dep.active_master()
        r1 = master.records[first["space_id"]]
        r2 = master.records[second["space_id"]]
        if r1.disk_id == r2.disk_id:
            assert r1.offset + r1.length <= r2.offset or r2.offset + r2.length <= r1.offset

    def test_release_withdraws_target(self):
        dep = fresh()
        client = dep.new_client("app", service="svc1")

        def scenario():
            info = yield from client.allocate(10 * MB)
            yield from client.mount(info["space_id"])
            ok = yield from client.release(info["space_id"])
            return info, ok

        info, ok = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert ok
        assert info["space_id"] not in dep.active_master().records
        endpoint = dep.endpoints[info["host_id"]]
        assert target_name(info["space_id"]) not in endpoint.targets.exposed_targets()

    def test_oversized_allocation_fails(self):
        dep = fresh()
        client = dep.new_client("app", service="svc1")
        from repro.net import RemoteError

        def scenario():
            yield from client.allocate(100 * 10**12)  # 100 TB > any disk

        with pytest.raises(RemoteError, match="AllocationError"):
            dep.sim.run_until_event(dep.sim.process(scenario()))


class TestHostFailover:
    def test_disks_move_off_dead_host(self):
        dep = fresh()
        master = dep.active_master()
        victims = master.sysstat.disks_on_host("host1")
        assert len(victims) == 4
        dep.crash_host("host1")
        dep.settle(15.0)
        master = dep.active_master()
        assert master.sysstat.host_status["host1"] is HostStatus.CRASHED
        for disk in victims:
            new_host = dep.fabric.attached_host(disk)
            assert new_host is not None and new_host != "host1"
        assert master.failovers_completed == 1

    def test_client_io_survives_host_failure(self):
        dep = fresh()
        client = dep.new_client("app", service="svc1")

        def setup():
            info = yield from client.allocate(64 * MB)
            space = yield from client.mount(info["space_id"])
            yield from space.write(0, 1 * MB)
            return info, space

        info, space = dep.sim.run_until_event(dep.sim.process(setup()))
        dep.crash_host(info["host_id"])
        start = dep.sim.now

        def after():
            result = yield from space.write(1 * MB, 1 * MB)
            return result

        result = dep.sim.run_until_event(dep.sim.process(after()))
        assert result["ok"]
        assert space.stats.remounts == 1
        assert space.current_host != info["address"]
        # The paper reports ~5.8s single-host recovery; the client sees
        # the outage as one slow write of the same order of magnitude.
        assert dep.sim.now - start < 20.0

    def test_status_callbacks_fire(self):
        dep = fresh()
        client = dep.new_client("app", service="svc1")
        events = []
        client.on_status_change(lambda sid, ev: events.append(ev))

        def setup():
            info = yield from client.allocate(64 * MB)
            space = yield from client.mount(info["space_id"])
            return info, space

        info, space = dep.sim.run_until_event(dep.sim.process(setup()))
        dep.crash_host(info["host_id"])

        def after():
            yield from space.read(0, 4 * KB)

        dep.sim.run_until_event(dep.sim.process(after()))
        assert "remounting" in events and "remounted" in events

    def test_master_failover(self):
        dep = fresh()
        active = dep.active_master()
        standby = [m for m in dep.masters if m is not active][0]
        active.crash()
        dep.settle(20.0)
        assert standby.active
        client = dep.new_client("app", service="svc1")

        def scenario():
            info = yield from client.allocate(10 * MB)
            return info

        info = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert info["space_id"]

    def test_new_master_reloads_storalloc(self):
        dep = fresh()
        client = dep.new_client("app", service="svc1")

        def setup():
            info = yield from client.allocate(64 * MB)
            return info

        info = dep.sim.run_until_event(dep.sim.process(setup()))
        active = dep.active_master()
        standby = [m for m in dep.masters if m is not active][0]
        active.crash()
        dep.settle(20.0)
        assert standby.active
        assert info["space_id"] in standby.records

    def test_dead_host_recovers_as_online(self):
        dep = fresh()
        dep.crash_host("host1")
        dep.settle(15.0)
        dep.recover_host("host1")
        dep.settle(10.0)
        master = dep.active_master()
        assert master.sysstat.host_status["host1"] is HostStatus.ONLINE


class TestControllerPath:
    def test_explicit_command_moves_disk(self):
        dep = fresh()
        from repro.net import RpcClient

        rpc = RpcClient(dep.sim, dep.network, "tester")

        def scenario():
            result = yield from rpc.call(
                "unit0.controller0",
                "controller.execute",
                [("disk0", "host2")],
                timeout=40.0,
            )
            return result

        result = dep.sim.run_until_event(dep.sim.process(scenario()))
        assert result["turned"]
        assert dep.fabric.attached_host("disk0") == "host2"
        dep.settle(5.0)
        assert "disk0" in dep.bus.os_view("host2")

    def test_conflicting_command_reports_error(self):
        dep = fresh()
        from repro.net import RemoteError, RpcClient

        rpc = RpcClient(dep.sim, dep.network, "tester")

        def scenario():
            yield from rpc.call(
                "unit0.controller0",
                "controller.execute",
                [("disk0", "host1")],  # drags disk1: Algorithm 1 conflict
                timeout=40.0,
            )

        with pytest.raises(RemoteError, match="conflict"):
            dep.sim.run_until_event(dep.sim.process(scenario()))

    def test_fabric_lock_serializes_commands(self):
        dep = fresh()
        from repro.net import RpcClient

        rpc = RpcClient(dep.sim, dep.network, "tester")
        done = []

        def command(pairs):
            result = yield from rpc.call(
                "unit0.controller0", "controller.execute", pairs, timeout=60.0
            )
            done.append(dep.sim.now)
            return result

        p1 = dep.sim.process(command([("disk0", "host2")]))
        p2 = dep.sim.process(command([("disk4", "host0")]))
        dep.sim.run_until_event(dep.sim.all_of([p1, p2]))
        assert len(done) == 2
        assert dep.fabric.attached_host("disk0") == "host2"
        assert dep.fabric.attached_host("disk4") == "host0"

    def test_control_plane_xor_failover(self):
        dep = fresh()
        states_before = {s.node_id: s.state for s in dep.fabric.switches}
        dep.control_plane.primary.failed = True
        dep.control_plane.failover_to_backup()
        states_after = {s.node_id: s.state for s in dep.fabric.switches}
        assert states_before == states_after  # takeover glitches nothing
        dep.control_plane.set_switch("disksw0", 1)
        assert dep.fabric.node("disksw0").state == 1
