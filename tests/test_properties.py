"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.coord import NoNodeError, ZnodeTree
from repro.disk import ConnectionType, DiskModel
from repro.fabric import (
    BandwidthModel,
    Flow,
    dual_tree_fabric,
    plan_switches,
    prototype_fabric,
    ring_fabric,
    SwitchConflict,
    validate_fabric,
)
from repro.workload import KB, MB, AccessPattern, WorkloadSpec

# ----------------------------------------------------------------------
# Fabric invariants
# ----------------------------------------------------------------------

switch_states = st.lists(st.booleans(), min_size=24, max_size=24)


class TestFabricPartitionInvariant:
    """§III-A: *any* switch configuration partitions the fabric into
    non-overlapping trees, each disk attached to at most one host."""

    @given(states=switch_states)
    @settings(max_examples=60, deadline=None)
    def test_any_configuration_is_a_valid_partition(self, states):
        fabric = prototype_fabric()
        for switch, state in zip(fabric.switches, states):
            switch.state = int(state)
        attachment = fabric.attachment_map()
        # Every disk resolves to exactly one host port or none (no
        # ambiguity, no cycles — trace_up would raise on a cycle).
        assert set(attachment) == {d.node_id for d in fabric.disks}
        # Paths of disks attached to different ports never share a
        # directed link in the same direction toward two roots: walking
        # up from any node is deterministic, so two disks reaching
        # different roots can share no node.
        node_owner = {}
        for disk_id, host in attachment.items():
            if host is None:
                continue
            walk = fabric.trace_up(disk_id)
            root = walk[-1]
            for node_id in walk[1:]:
                claimed = node_owner.setdefault(node_id, root)
                assert claimed == root, f"{node_id} reaches two roots"

    @given(states=switch_states)
    @settings(max_examples=30, deadline=None)
    def test_every_disk_keeps_full_reachability(self, states):
        """Switch states never destroy *potential* reachability."""
        fabric = prototype_fabric()
        for switch, state in zip(fabric.switches, states):
            switch.state = int(state)
        for disk in fabric.disks:
            assert len(fabric.reachable_hosts(disk.node_id)) == 4


class TestAlgorithm1Invariant:
    """Algorithm 1 must never disturb a disk outside the command."""

    @given(
        disk_index=st.integers(min_value=0, max_value=15),
        host_index=st.integers(min_value=0, max_value=3),
        prior_states=switch_states,
    )
    @settings(max_examples=80, deadline=None)
    def test_plan_preserves_uninvolved_disks(self, disk_index, host_index, prior_states):
        fabric = prototype_fabric()
        for switch, state in zip(fabric.switches, prior_states):
            switch.state = int(state)
        disk_id = f"disk{disk_index}"
        host_id = f"host{host_index}"
        before = fabric.attachment_map()
        try:
            plan = plan_switches(fabric, [(disk_id, host_id)])
        except SwitchConflict:
            return  # refusing is always safe
        fabric.apply_settings(plan.turns)
        after = fabric.attachment_map()
        assert after[disk_id] == host_id
        for other, owner in before.items():
            if other != disk_id and owner is not None:
                assert after[other] == owner, f"{other} was disturbed"

    @given(
        pair_count=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_pair_plans_satisfy_all_pairs(self, pair_count, seed):
        import random

        rng = random.Random(seed)
        fabric = prototype_fabric()
        disks = rng.sample([d.node_id for d in fabric.disks], pair_count)
        pairs = [(d, f"host{rng.randrange(4)}") for d in disks]
        try:
            plan = plan_switches(fabric, pairs)
        except SwitchConflict:
            return
        fabric.apply_settings(plan.turns)
        for disk_id, host_id in pairs:
            assert fabric.attached_host(disk_id) == host_id


class TestBuilderProperties:
    @given(
        num_hosts=st.sampled_from([2, 3, 4, 6]),
        disks_per_leaf=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=20, deadline=None)
    def test_ring_fabrics_validate(self, num_hosts, disks_per_leaf):
        fabric = ring_fabric(num_hosts=num_hosts, disks_per_leaf=disks_per_leaf)
        report = validate_fabric(fabric, require_full_reachability=num_hosts <= 4)
        assert report.ok, report.errors

    @given(
        num_disks=st.integers(min_value=1, max_value=24),
        num_hosts=st.sampled_from([2, 4]),
    )
    @settings(max_examples=20, deadline=None)
    def test_dual_tree_fabrics_validate(self, num_disks, num_hosts):
        fabric = dual_tree_fabric(num_disks=num_disks, num_hosts=num_hosts)
        report = validate_fabric(fabric)
        assert report.ok, report.errors


# ----------------------------------------------------------------------
# Bandwidth allocator invariants
# ----------------------------------------------------------------------


class TestBandwidthProperties:
    @given(
        demands=st.lists(
            st.floats(min_value=1e5, max_value=5e8), min_size=1, max_size=16
        ),
        reads=st.lists(st.booleans(), min_size=16, max_size=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_allocation_respects_all_caps(self, demands, reads):
        fabric = prototype_fabric()
        disks = [d.node_id for d in fabric.disks][: len(demands)]
        flows = [
            Flow(f"f{i}", disks[i], demands[i], is_read=reads[i], io_size=4 * MB)
            for i in range(len(disks))
        ]
        model = BandwidthModel(fabric)
        allocation = model.allocate(flows)
        eps = 1e-6
        # Per-flow demand cap.
        for flow in flows:
            assert allocation.rate(flow.flow_id) <= flow.demand * (1 + eps)
        # Per-port directional and duplex caps.
        for port in fabric.host_ports:
            for direction in (True, False):
                total = sum(
                    allocation.rate(f.flow_id)
                    for f in flows
                    if f.is_read is direction
                    and fabric.trace_up(f.disk_id)[-1] == port.node_id
                )
                assert total <= model.per_direction_capacity * (1 + eps)
            both = sum(
                allocation.rate(f.flow_id)
                for f in flows
                if fabric.trace_up(f.disk_id)[-1] == port.node_id
            )
            assert both <= model.duplex_capacity * (1 + eps)

    @given(
        demand=st.floats(min_value=1e6, max_value=5e8),
        count=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_equal_demands_get_equal_rates(self, demand, count):
        fabric = prototype_fabric()
        disks = [d for d, h in fabric.attachment_map().items() if h == "host0"][:count]
        flows = [Flow(f"f{d}", d, demand, is_read=True) for d in disks]
        allocation = BandwidthModel(fabric).allocate(flows)
        rates = [allocation.rate(f.flow_id) for f in flows]
        assert max(rates) - min(rates) <= 1e-6 * max(rates) + 1e-9

    @given(demand=st.floats(min_value=1e6, max_value=2e8))
    @settings(max_examples=20, deadline=None)
    def test_adding_a_flow_never_increases_another(self, demand):
        fabric = prototype_fabric()
        disks = [d for d, h in fabric.attachment_map().items() if h == "host0"]
        base = [Flow("a", disks[0], demand, is_read=True)]
        more = base + [Flow("b", disks[1], demand, is_read=True)]
        model = BandwidthModel(fabric)
        alone = model.allocate(base).rate("a")
        shared = model.allocate(more).rate("a")
        assert shared <= alone * (1 + 1e-9)


# ----------------------------------------------------------------------
# Disk model invariants
# ----------------------------------------------------------------------


class TestDiskModelProperties:
    @given(
        size=st.integers(min_value=512, max_value=16 * MB),
        read_fraction=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
        connection=st.sampled_from(list(ConnectionType)),
    )
    @settings(max_examples=60, deadline=None)
    def test_service_time_positive_and_finite(self, size, read_fraction, connection):
        model = DiskModel(connection=connection)
        for pattern in AccessPattern:
            spec = WorkloadSpec(size, pattern, read_fraction)
            t = model.service_time(spec)
            assert 0 < t < 10.0

    @given(
        size=st.integers(min_value=4 * KB, max_value=8 * MB),
        connection=st.sampled_from(list(ConnectionType)),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_never_faster_than_sequential(self, size, connection):
        model = DiskModel(connection=connection)
        for rf in (0.0, 1.0):
            seq = model.service_time(WorkloadSpec(size, AccessPattern.SEQUENTIAL, rf))
            rand = model.service_time(WorkloadSpec(size, AccessPattern.RANDOM, rf))
            assert rand >= seq

    @given(
        small=st.integers(min_value=512, max_value=1 * MB),
        factor=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_bigger_transfers_have_better_bandwidth(self, small, factor):
        model = DiskModel()
        spec_small = WorkloadSpec(small, AccessPattern.SEQUENTIAL, 1.0)
        spec_big = WorkloadSpec(small * factor, AccessPattern.SEQUENTIAL, 1.0)
        assert (
            model.throughput(spec_big).bytes_per_second
            >= model.throughput(spec_small).bytes_per_second
        )


# ----------------------------------------------------------------------
# Znode tree invariants
# ----------------------------------------------------------------------

_name = st.text(alphabet="abcdefg", min_size=1, max_size=3)


@st.composite
def _tree_ops(draw):
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["create", "delete", "set"]), _name, _name),
            min_size=1,
            max_size=30,
        )
    )
    return ops


class TestZnodeProperties:
    @given(ops=_tree_ops())
    @settings(max_examples=60, deadline=None)
    def test_tree_consistency_under_random_ops(self, ops):
        tree = ZnodeTree()
        for op, a, b in ops:
            path = f"/{a}"
            child = f"/{a}/{b}"
            try:
                if op == "create":
                    if not tree.exists(path):
                        tree.create(path)
                    else:
                        tree.create(child)
                elif op == "delete":
                    tree.delete(path, recursive=True)
                elif op == "set":
                    tree.set_data(path, b)
            except (NoNodeError, Exception):
                pass
            # Invariants: root always exists, every child's path is
            # prefixed by its parent's, dump matches traversal.
            assert tree.exists("/")
            dump = tree.dump()
            for node_path in dump:
                if node_path == "/":
                    continue
                parent = node_path.rsplit("/", 1)[0] or "/"
                assert parent in dump

    @given(n=st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_sequential_names_strictly_increase(self, n):
        tree = ZnodeTree()
        tree.create("/q")
        paths = [tree.create("/q/n-", sequential=True) for _ in range(n)]
        assert paths == sorted(paths)
        assert len(set(paths)) == n

    @given(
        sessions=st.lists(st.sampled_from(["s1", "s2", "s3"]), min_size=1, max_size=12)
    )
    @settings(max_examples=30, deadline=None)
    def test_ephemeral_cleanup_removes_exactly_that_session(self, sessions):
        tree = ZnodeTree()
        tree.create("/live")
        for i, session in enumerate(sessions):
            tree.create(f"/live/n{i}", ephemeral_owner=session)
        tree.delete_ephemerals_of("s1")
        assert tree.ephemeral_paths_of("s1") == []
        for i, session in enumerate(sessions):
            if session != "s1":
                assert tree.exists(f"/live/n{i}")
