"""Runtime behaviour of the unit vocabulary and conversion helpers.

Includes regression tests for the unit bugs the UNIT analyzer surfaced:
the disk model's MB/s property and the rebuild-rate report previously
divided by hand-rolled 1e6 literals.
"""

import pytest

from repro.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    TB,
    TiB,
    Bytes,
    BytesPerSec,
    Joules,
    SimSeconds,
    Watts,
    bytes_per_sec_to_mbps,
    bytes_to_mb,
    joules_to_watts,
    mb_to_bytes,
    mbps_to_bytes_per_sec,
    watt_seconds,
)


def test_decimal_and_binary_scales_are_distinct():
    assert (KB, MB, GB, TB) == (10**3, 10**6, 10**9, 10**12)
    assert (KiB, MiB, GiB, TiB) == (1 << 10, 1 << 20, 1 << 30, 1 << 40)
    assert MB != MiB


def test_watt_seconds_round_trips_through_joules():
    energy = watt_seconds(Watts(12.0), SimSeconds(3600.0))
    assert energy == Joules(43_200.0)
    assert joules_to_watts(energy, SimSeconds(3600.0)) == pytest.approx(12.0)


def test_joules_to_watts_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        joules_to_watts(Joules(10.0), SimSeconds(0.0))


def test_bandwidth_conversions_round_trip():
    rate = BytesPerSec(300.0 * MB)
    assert bytes_per_sec_to_mbps(rate) == pytest.approx(300.0)
    assert mbps_to_bytes_per_sec(bytes_per_sec_to_mbps(rate)) == pytest.approx(rate)


def test_byte_conversions():
    assert mb_to_bytes(4.0) == Bytes(4 * MB)
    assert bytes_to_mb(Bytes(4 * MB)) == pytest.approx(4.0)


def test_disk_throughput_mb_per_second_uses_decimal_mb():
    # Regression: mb_per_second once divided bytes by a bare 1e6 inline.
    from repro.disk.model import ThroughputEstimate

    estimate = ThroughputEstimate(
        spec=None,
        service_time=SimSeconds(0.01),
        iops=100.0,
        bytes_per_second=BytesPerSec(250.0 * MB),
    )
    assert estimate.mb_per_second == pytest.approx(250.0)


def test_rebuild_rate_mb_s_uses_decimal_mb():
    # Regression: rate_mb_s once hand-divided by 1e6 without a constant.
    from repro.reliability.reconstruction import RebuildEstimate

    estimate = RebuildEstimate(
        strategy="drill",
        rebuild_bytes=250 * MB,
        seconds=2.0,
        network_bytes=0,
    )
    assert estimate.rate_mb_s == pytest.approx(125.0)
    idle = RebuildEstimate(strategy="drill", rebuild_bytes=0, seconds=0.0, network_bytes=0)
    assert idle.rate_mb_s == 0.0
