"""Smoke test for the benchmark recorder (part of the default gate).

Keeps ``scripts/run_benchmarks.py`` runnable so CI can accumulate
``BENCH_figure5.json`` records, and checks the record schema.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "run_benchmarks.py"


def test_benchmark_smoke_records_figure5(tmp_path):
    completed = subprocess.run(
        [sys.executable, str(SCRIPT), "--out-dir", str(tmp_path)],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    bench_file = tmp_path / "BENCH_figure5.json"
    assert bench_file.exists()
    history = json.loads(bench_file.read_text())
    assert isinstance(history, list) and len(history) == 1
    record = history[0]
    assert record["schema_version"] == 2
    assert record["experiment"] == "figure5"
    assert record["wall_seconds"] > 0
    assert "sim_events" in record
    assert record["counters"]["fabric.allocations"] > 0


def test_benchmark_appends_to_existing_history(tmp_path):
    for _ in range(2):
        completed = subprocess.run(
            [sys.executable, str(SCRIPT), "--out-dir", str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
    history = json.loads((tmp_path / "BENCH_figure5.json").read_text())
    assert len(history) == 2


def test_benchmark_smoke_records_gateway(tmp_path):
    completed = subprocess.run(
        [sys.executable, str(SCRIPT), "--out-dir", str(tmp_path),
         "--smoke", "gateway"],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    history = json.loads((tmp_path / "BENCH_gateway.json").read_text())
    assert isinstance(history, list) and len(history) == 1
    record = history[0]
    assert record["schema_version"] == 2
    assert record["experiment"] == "gateway"
    assert record["smoke"] is True
    assert record["wall_seconds"] > 0
    # One load point, both schedulers.
    sweep = record["sweep"]
    assert [point["scheduler"] for point in sweep] == ["batch", "fifo"]
    for point in sweep:
        assert point["completed"] > 0
        assert point["spin_ups"] > 0
        assert point["latency_p99"] > 0
        assert point["energy_joules"] > 0
    assert record["counters"]["gateway.completed"] > 0
    assert record["counters"]["gateway.batches"] > 0


def test_benchmark_smoke_records_shardstore(tmp_path):
    completed = subprocess.run(
        [sys.executable, str(SCRIPT), "--out-dir", str(tmp_path),
         "--smoke", "shardstore"],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    history = json.loads((tmp_path / "BENCH_shardstore.json").read_text())
    assert isinstance(history, list) and len(history) == 1
    record = history[0]
    assert record["schema_version"] == 2
    assert record["experiment"] == "shardstore"
    assert record["smoke"] is True
    assert record["wall_seconds"] > 0
    points = record["points"]
    assert [point["layout"] for point in points] == ["packed", "naive"]
    for point in points:
        assert point["exactly_once"] is True
        assert point["objects_per_second"] > 0
        assert point["energy_joules"] > 0
    packed, naive = points
    assert packed["spin_ups"] < naive["spin_ups"]
    assert record["counters"]["shardstore.acked"] > 0


def test_kernel_throughput_record_shape():
    import repro  # noqa: F401  (ensures src/ is importable in-process)
    from repro.benchmarks import run_benchmark

    record = run_benchmark("kernel_throughput", repeat=2, smoke=True)
    assert record["schema_version"] == 2
    assert record["events_per_second_fast"] > 0
    assert record["events_per_second_eventpath"] > 0
    assert record["events_per_second_instrumented"] > 0
    assert record["wall_seconds"] >= record["wall_seconds_best"]
    comparison = record["scheduler_comparison"]
    assert [point["fan_out"] for point in comparison] == [16, 240, 1920]
    for point in comparison:
        assert point["heap_events_per_second"] > 0
        assert point["calendar_events_per_second"] > 0
        assert point["calendar_uplift"] > 0


def test_benchmark_rejects_unknown_experiment(tmp_path):
    completed = subprocess.run(
        [sys.executable, str(SCRIPT), "--out-dir", str(tmp_path), "nope"],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 2
