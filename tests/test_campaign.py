"""Campaign runner: grid enumeration, caching, resume, CLI wiring."""

import json

import pytest

from repro.cli import main
from repro.experiments.campaign import (
    CampaignError,
    CampaignSpec,
    run_campaign,
)

def _spec(seeds=(1, 2), settle=(0.0, 2.0)):
    return CampaignSpec.build(
        "figure5", seeds=list(seeds), sweep={"settle_seconds": list(settle)}
    )


# -- spec validation ------------------------------------------------------


def test_unknown_experiment_rejected():
    with pytest.raises(CampaignError, match="unknown experiment"):
        CampaignSpec.build("nope")


def test_unknown_sweep_parameter_rejected():
    with pytest.raises(CampaignError, match="no parameter"):
        CampaignSpec.build("figure5", sweep={"bogus": [1]})


def test_seeds_require_declared_seed_parameter():
    with pytest.raises(CampaignError, match="no 'seed' parameter"):
        CampaignSpec.build("table1", seeds=[1, 2])


def test_seed_cannot_be_given_twice():
    with pytest.raises(CampaignError, match="not both"):
        CampaignSpec.build("figure5", seeds=[1], sweep={"seed": [2]})


def test_empty_sweep_axis_rejected():
    with pytest.raises(CampaignError, match="no values"):
        CampaignSpec.build("figure5", sweep={"settle_seconds": []})


def test_cell_enumeration_is_deterministic():
    cells = _spec().cells()
    assert [c.params_dict for c in cells] == [
        {"seed": 1, "settle_seconds": 0.0},
        {"seed": 1, "settle_seconds": 2.0},
        {"seed": 2, "settle_seconds": 0.0},
        {"seed": 2, "settle_seconds": 2.0},
    ]
    # content addresses are distinct and stable
    digests = [c.digest() for c in cells]
    assert len(set(digests)) == 4
    assert digests == [c.digest() for c in _spec().cells()]


# -- caching and resume ---------------------------------------------------


def test_second_run_served_entirely_from_cache(tmp_path):
    spec = _spec()
    first = run_campaign(spec, cache_dir=tmp_path)
    assert (first.total, first.computed, first.cached) == (4, 4, 0)
    second = run_campaign(spec, cache_dir=tmp_path)
    assert (second.total, second.computed, second.cached) == (4, 0, 4)
    assert [o.result for o in first.outcomes] == [
        o.result for o in second.outcomes
    ]
    assert [o.digest for o in first.outcomes] == [
        o.digest for o in second.outcomes
    ]


def test_resume_recomputes_only_missing_cells(tmp_path):
    spec = _spec()
    run_campaign(spec, cache_dir=tmp_path)
    entries = sorted((tmp_path / "figure5").glob("*.json"))
    assert len(entries) == 4
    entries[1].unlink()
    resumed = run_campaign(spec, cache_dir=tmp_path)
    assert (resumed.computed, resumed.cached) == (1, 3)


def test_torn_cache_entry_recomputed(tmp_path):
    spec = _spec()
    run_campaign(spec, cache_dir=tmp_path)
    entry = sorted((tmp_path / "figure5").glob("*.json"))[0]
    entry.write_text('{"truncated')  # simulate a crash mid-write
    resumed = run_campaign(spec, cache_dir=tmp_path)
    assert (resumed.computed, resumed.cached) == (1, 3)


def test_interrupted_campaign_resumes_where_it_stopped(tmp_path):
    spec = _spec()
    finished = []

    def interrupt_after_two(outcome):
        finished.append(outcome)
        if len(finished) == 2:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_campaign(spec, cache_dir=tmp_path, progress=interrupt_after_two)
    # the two finished cells are durably cached...
    assert len(list((tmp_path / "figure5").glob("*.json"))) == 2
    # ...and the rerun computes only the remaining two
    resumed = run_campaign(spec, cache_dir=tmp_path)
    assert (resumed.total, resumed.computed, resumed.cached) == (4, 2, 2)


def test_refresh_recomputes_despite_cache(tmp_path):
    spec = _spec(seeds=(3,), settle=(0.0,))
    run_campaign(spec, cache_dir=tmp_path)
    refreshed = run_campaign(spec, cache_dir=tmp_path, refresh=True)
    assert (refreshed.computed, refreshed.cached) == (1, 0)


def test_worker_pool_matches_inline_results(tmp_path):
    spec = _spec()
    inline = run_campaign(spec, cache_dir=tmp_path / "inline")
    pooled = run_campaign(spec, cache_dir=tmp_path / "pool", workers=2)
    assert pooled.computed == 4
    assert [o.result for o in inline.outcomes] == [
        o.result for o in pooled.outcomes
    ]


# -- CLI ------------------------------------------------------------------


def test_cli_campaign_runs_and_reports_cache_hits(tmp_path, capsys):
    argv = [
        "campaign", "figure5",
        "--seeds", "1,2",
        "--set", "settle_seconds=0.0,2.0",
        "--cache-dir", str(tmp_path),
        "--json",
    ]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert (first["total"], first["computed"], first["cached"]) == (4, 4, 0)
    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)
    assert (second["total"], second["computed"], second["cached"]) == (4, 0, 4)
    assert [c["digest"] for c in first["cells"]] == [
        c["digest"] for c in second["cells"]
    ]


def test_cli_campaign_rejects_bad_set(tmp_path, capsys):
    assert main([
        "campaign", "figure5", "--set", "garbage",
        "--cache-dir", str(tmp_path),
    ]) == 2
    assert "expected name=" in capsys.readouterr().err


def test_cli_campaign_rejects_unknown_parameter(tmp_path, capsys):
    assert main([
        "campaign", "figure5", "--set", "bogus=1",
        "--cache-dir", str(tmp_path),
    ]) == 2
    assert "campaign error" in capsys.readouterr().err
