"""Cross-feature integration: overlays under failures, misc API edges."""

import pytest

from repro.backup import BackupService, provision_archive, synthetic_dataset
from repro.cluster import build_deployment, build_multi_unit_deployment
from repro.net import RemoteError, RpcClient
from repro.sim import RngRegistry, Tracer
from repro.workload import MB


class TestBackupUnderFailover:
    def test_snapshot_survives_host_crash(self):
        """An archive snapshot keeps going across a UStore failover —
        the overlay only sees one slow chunk write."""
        dep = build_deployment()
        dep.settle(15.0)
        sim = dep.sim
        store = sim.run_until_event(
            sim.process(provision_archive(dep, num_spaces=2, space_bytes=2048 * MB))
        )
        rng = RngRegistry(31)
        service = BackupService(dep, store, rng, change_fraction=0.1)
        service.load_dataset(synthetic_dataset(rng, num_files=30, mean_file_mb=8.0))

        # Crash the host serving the first arena mid-snapshot.
        victim_disk = store.spaces[0].space_id.split("/")[2]
        victim_host = dep.fabric.attached_host(victim_disk)

        def assassin():
            yield sim.timeout(3.0)
            dep.crash_host(victim_host)

        sim.process(assassin())

        def run():
            return (yield from service.run_rounds(1))

        rounds = sim.run_until_event(sim.process(run()))
        stats = rounds[0]
        assert stats.chunks_new == stats.chunks_total  # everything stored
        assert store.spaces[0].stats.remounts >= 1
        assert dep.fabric.attached_host(victim_disk) != victim_host

    def test_restore_after_failover(self):
        dep = build_deployment()
        dep.settle(15.0)
        sim = dep.sim
        store = sim.run_until_event(
            sim.process(provision_archive(dep, num_spaces=1, space_bytes=1024 * MB))
        )
        rng = RngRegistry(33)
        service = BackupService(dep, store, rng)
        service.load_dataset(synthetic_dataset(rng, num_files=10, mean_file_mb=4.0))

        def backup():
            return (yield from service.run_rounds(1))

        sim.run_until_event(sim.process(backup()))
        disk = store.spaces[0].space_id.split("/")[2]
        dep.crash_host(dep.fabric.attached_host(disk))
        dep.settle(15.0)

        def restore():
            return (yield from store.restore("snap-000"))

        result = sim.run_until_event(sim.process(restore()))
        assert result["chunks_read"] > 0


class TestMultiUnitEdges:
    def test_cross_unit_migration_rejected(self):
        """A disk cannot be wired to a host of a different unit — the
        fabric has no such path, and the command fails cleanly."""
        dep = build_multi_unit_deployment(num_units=2)
        dep.settle(15.0)
        rpc = RpcClient(dep.sim, dep.network, "edge-op")
        master = dep.active_master().address

        def scenario():
            yield from rpc.call(
                master,
                "master.migrate_disk",
                "unit0.disk0",
                "unit1.host0",
                timeout=60.0,
            )

        with pytest.raises(RemoteError):
            dep.sim.run_until_event(dep.sim.process(scenario()))
        # The disk stayed put.
        assert dep.units["unit0"].fabric.attached_host("unit0.disk0") == "unit0.host0"


class TestTracerGaps:
    def test_since_and_clear(self):
        clock = {"t": 0.0}
        tracer = Tracer(lambda: clock["t"])
        tracer.emit("a", "early")
        clock["t"] = 5.0
        tracer.emit("a", "late")
        assert [r.message for r in tracer.since(1.0)] == ["late"]
        tracer.clear()
        assert tracer.records == []
