"""Tests for the §V-A physical design envelope."""

import pytest

from repro.cost.physical import MAX_DISKS_4U, unit_spec


class TestUnitSpec:
    def test_paper_envelope_200tb(self):
        """§V-A: ~50x 4TB disks give ~200TB raw in a 4U unit."""
        spec = unit_spec(num_disks=50, disk_capacity_bytes=4 * 10**12)
        assert spec.raw_capacity_tb == pytest.approx(200.0)
        assert spec.fits_4u

    def test_paper_envelope_throughput_2_to_3_gb_s(self):
        """§V-A: ~2-3 GB/s aggregated on all 4 ports."""
        spec = unit_spec(num_disks=50, num_hosts=4)
        assert 2.0 <= spec.aggregate_throughput_gb_s <= 3.0

    def test_few_disks_are_disk_limited(self):
        spec = unit_spec(num_disks=4, num_hosts=4)
        # 4 disks cannot saturate 4 duplex ports.
        assert spec.aggregate_throughput_gb_s < 1.0

    def test_oversize_flagged(self):
        spec = unit_spec(num_disks=MAX_DISKS_4U + 10)
        assert not spec.fits_4u

    def test_power_density_reasonable(self):
        """A cold-storage 4U unit draws on the order of 10W or less per
        raw TB while spinning."""
        spec = unit_spec(num_disks=64, disk_capacity_bytes=3 * 10**12)
        assert 1.0 < spec.watts_per_tb < 10.0

    def test_density_per_rack_unit(self):
        spec = unit_spec(num_disks=64, disk_capacity_bytes=4 * 10**12)
        assert spec.capacity_per_rack_unit_tb == pytest.approx(64.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            unit_spec(num_disks=0)
