"""Unit tests for the request-tracing layer (repro.obs.trace / slo /
trace_export): phase telescoping, scope invalidation, the null path,
critical-path analysis, burn-rate alerting, the flight recorder, and
the Chrome trace_event export schema."""

import json

import pytest

from repro.obs import (
    COMPONENTS,
    CriticalPathAnalyzer,
    FlightRecorder,
    Histogram,
    NULL_SCOPE,
    NULL_TRACE,
    NULL_TRACER,
    RequestTracer,
    SloMonitor,
    SloObjective,
    chrome_trace_events,
    export_chrome_trace,
    export_trace_jsonl,
    trace_to_dict,
)


class ManualClock:
    """A hand-cranked clock standing in for the simulator's."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def tracer(clock):
    return RequestTracer(clock=clock)


# -- phase boundaries and the attribution identity -------------------------


def test_phases_telescope_and_partition_latency(tracer, clock):
    ctx = tracer.start("req", tenant="t0")
    clock.advance(2.0)
    ctx.phase("queue_wait")
    clock.advance(3.0)
    ctx.phase("power_wait")
    clock.advance(0.5)
    ctx.phase("transfer")
    clock.advance(1.0)  # unattributed tail -> "other"
    ctx.finish("ok")

    assert ctx.latency == pytest.approx(6.5)
    # Segments are contiguous: each starts where the previous ended.
    assert ctx.segments[0].start == ctx.start
    for before, after in zip(ctx.segments, ctx.segments[1:]):
        assert before.end == after.start
    assert ctx.segments[-1].end == ctx.end
    breakdown = ctx.breakdown()
    assert breakdown["queue_wait"] == pytest.approx(2.0)
    assert breakdown["power_wait"] == pytest.approx(3.0)
    assert breakdown["transfer"] == pytest.approx(0.5)
    assert breakdown["other"] == pytest.approx(1.0)
    assert sum(breakdown.values()) == pytest.approx(ctx.latency)


def test_zero_length_and_backward_boundaries_are_dropped(tracer, clock):
    ctx = tracer.start("req")
    clock.advance(1.0)
    ctx.phase("queue_wait")
    ctx.phase("power_wait")  # zero elapsed: no segment
    ctx.phase_at("transfer", 0.5)  # backwards: no segment, boundary stays
    assert len(ctx.segments) == 1
    clock.advance(1.0)
    ctx.finish("ok")
    assert [s.component for s in ctx.segments] == ["queue_wait", "other"]
    assert sum(s.duration for s in ctx.segments) == pytest.approx(ctx.latency)


def test_finish_is_idempotent_and_seals_the_trace(tracer, clock):
    ctx = tracer.start("req")
    clock.advance(1.0)
    ctx.finish("ok")
    end = ctx.end
    clock.advance(5.0)
    ctx.finish("failed")  # second finish: no-op
    ctx.phase("transfer")  # stamps after finish: no-op
    ctx.event("late")
    assert ctx.end == end
    assert ctx.status == "ok"
    assert ctx.events == []
    assert len(tracer.completed) == 1


def test_retroactive_phase_at_decomposes_an_elapsed_interval(tracer, clock):
    ctx = tracer.start("req")
    clock.advance(10.0)
    # Decompose [0, 10] after the fact, the way the disk layer does.
    ctx.phase_at("seek_rotation", 2.0)
    ctx.phase_at("bandwidth_throttle", 3.5)
    ctx.phase("transfer")
    ctx.finish("ok")
    breakdown = ctx.breakdown()
    assert breakdown["seek_rotation"] == pytest.approx(2.0)
    assert breakdown["bandwidth_throttle"] == pytest.approx(1.5)
    assert breakdown["transfer"] == pytest.approx(6.5)
    assert sum(breakdown.values()) == pytest.approx(10.0)


# -- scopes and epoch invalidation ----------------------------------------


def test_stale_scope_becomes_inert_after_invalidation(tracer, clock):
    ctx = tracer.start("req")
    stale = ctx.scope()
    assert stale.enabled
    ctx.invalidate_scopes()
    assert not stale.enabled
    clock.advance(1.0)
    stale.phase("transfer")
    stale.event("late")
    assert ctx.segments == []
    assert ctx.events == []
    fresh = ctx.scope()
    fresh.phase("network")
    assert [s.component for s in ctx.segments] == ["network"]


def test_finish_invalidates_outstanding_scopes(tracer, clock):
    ctx = tracer.start("req")
    scope = ctx.scope()
    ctx.finish("ok")
    assert not scope.enabled


# -- the null path ---------------------------------------------------------


def test_null_tracer_is_disabled_and_mints_the_shared_null_trace():
    assert not NULL_TRACER.enabled
    ctx = NULL_TRACER.start("req", tenant="t0", size=1)
    assert ctx is NULL_TRACE
    assert not ctx.enabled
    ctx.phase("transfer")
    ctx.event("x", a=1)
    ctx.annotate(b=2)
    ctx.finish("ok")
    assert ctx.latency == 0.0
    assert ctx.breakdown() == {}
    assert ctx.scope() is NULL_SCOPE
    assert not NULL_SCOPE.enabled
    NULL_SCOPE.phase("transfer")
    NULL_SCOPE.phase_at("transfer", 1.0)
    NULL_SCOPE.event("x")
    NULL_TRACER.instant("fault.disk", target="d0")
    assert NULL_TRACER.completed == []
    assert NULL_TRACER.instants == []


# -- critical-path analysis ------------------------------------------------


def test_analyzer_identity_and_critical_component(tracer, clock):
    ctx = tracer.start("req")
    clock.advance(4.0)
    ctx.phase("spinup")
    clock.advance(1.0)
    ctx.phase("transfer")
    ctx.finish("ok")
    report = CriticalPathAnalyzer().analyze(ctx)
    assert report["identity_ok"]
    assert report["residual"] == pytest.approx(0.0, abs=1e-12)
    assert report["critical_component"] == "spinup"
    assert report["latency"] == pytest.approx(5.0)


def test_analyzer_rejects_unfinished_traces(tracer):
    ctx = tracer.start("req")
    with pytest.raises(ValueError):
        CriticalPathAnalyzer().analyze(ctx)


def test_aggregate_shares_sum_to_one(tracer, clock):
    for _ in range(3):
        ctx = tracer.start("req")
        clock.advance(2.0)
        ctx.phase("power_wait")
        clock.advance(1.0)
        ctx.phase("transfer")
        ctx.finish("ok")
    aggregate = CriticalPathAnalyzer().aggregate(tracer.completed)
    assert aggregate["traces"] == 3
    assert aggregate["identity_failures"] == 0
    assert aggregate["latency_total"] == pytest.approx(9.0)
    assert sum(aggregate["shares"].values()) == pytest.approx(1.0)
    assert set(aggregate["components"]) <= set(COMPONENTS)


# -- SLO burn-rate monitoring ----------------------------------------------


def _complete_request(tracer, clock, tenant, ok=True, dt=0.1):
    ctx = tracer.start("req", tenant=tenant)
    clock.advance(dt)
    ctx.finish("ok" if ok else "failed")


def test_burn_rate_fires_and_clears_with_hysteresis(tracer, clock):
    monitor = SloMonitor(
        tracer,
        [
            SloObjective(
                tenant="t0",
                objective=0.9,  # budget: 10% bad
                window_seconds=1000.0,
                fire_threshold=2.0,
                clear_threshold=1.0,
                min_events=5,
            )
        ],
    )
    # 4 bad of first 4: burn huge but below min_events -> silent.
    for _ in range(4):
        _complete_request(tracer, clock, "t0", ok=False)
    assert not monitor.firing("t0")
    _complete_request(tracer, clock, "t0", ok=False)
    # 5 bad / 5 total: bad_fraction 1.0 / 0.1 budget = burn 10 -> fire.
    assert monitor.firing("t0")
    assert monitor.burn_rate("t0") == pytest.approx(10.0)
    fires = [a for a in monitor.alerts if a.kind == "fire"]
    assert len(fires) == 1
    assert fires[0].bad == 5 and fires[0].total == 5
    # Alert instants feed the tracer stream (flight-recorder trigger).
    assert [i.name for i in tracer.instants] == ["slo.alert"]
    # Good traffic dilutes the window; must drop below clear_threshold
    # (burn < 1.0 => bad_fraction < 0.1 => > 45 good on 5 bad).
    for _ in range(50):
        _complete_request(tracer, clock, "t0", ok=True)
    assert not monitor.firing("t0")
    clears = [a for a in monitor.alerts if a.kind == "clear"]
    assert len(clears) == 1
    assert [i.name for i in tracer.instants] == ["slo.alert", "slo.clear"]
    monitor.detach()


def test_slo_missed_annotation_counts_as_bad(tracer, clock):
    monitor = SloMonitor(
        tracer, [SloObjective(tenant="t0", objective=0.5, min_events=1)]
    )
    ctx = tracer.start("req", tenant="t0")
    clock.advance(0.1)
    ctx.annotate(slo_missed=True)
    ctx.finish("ok")  # completed, but past its deadline
    assert monitor.burn_rate("t0") == pytest.approx(2.0)
    assert monitor.firing("t0")
    monitor.detach()


def test_window_eviction_forgets_old_requests(tracer, clock):
    monitor = SloMonitor(
        tracer,
        [SloObjective(tenant="t0", objective=0.9, window_seconds=10.0, min_events=1)],
    )
    _complete_request(tracer, clock, "t0", ok=False)
    clock.advance(100.0)  # the bad request ages out of the window
    _complete_request(tracer, clock, "t0", ok=True)
    assert monitor.burn_rate("t0") == pytest.approx(0.0)
    monitor.detach()


def test_monitor_ignores_foreign_tenants_and_system_traces(tracer, clock):
    monitor = SloMonitor(
        tracer, [SloObjective(tenant="t0", objective=0.9, min_events=1)]
    )
    _complete_request(tracer, clock, "other-tenant", ok=False)
    ctx = tracer.start("failover", kind="system", tenant="t0")
    clock.advance(0.1)
    ctx.finish("failed")
    assert monitor.alerts == []
    monitor.detach()


# -- flight recorder -------------------------------------------------------


def test_flight_recorder_ring_and_fault_trigger(tracer, clock):
    recorder = FlightRecorder(tracer, capacity=3)
    for index in range(5):
        ctx = tracer.start("req", tenant="t0", seq=index)
        clock.advance(1.0)
        ctx.finish("ok")
    assert len(recorder.last()) == 3  # ring kept only the newest 3
    assert recorder.last(1)[0].attrs["seq"] == 4
    assert recorder.dumps == []
    tracer.instant("fault.host_crash", target="h0")
    assert recorder.triggers_seen == 1
    assert len(recorder.dumps) == 1
    dump = recorder.dumps[0]
    assert dump["trigger"]["name"] == "fault.host_crash"
    assert [t["attrs"]["seq"] for t in dump["traces"]] == [2, 3, 4]
    # Non-matching instants don't snapshot.
    tracer.instant("slo.clear", tenant="t0")
    assert len(recorder.dumps) == 1
    recorder.detach()


def test_flight_recorder_caps_dump_count(tracer, clock):
    recorder = FlightRecorder(tracer, capacity=2, max_dumps=2)
    for _ in range(4):
        tracer.instant("fault.disk_fail", target="d0")
    assert recorder.triggers_seen == 4
    assert len(recorder.dumps) == 2
    recorder.detach()


def test_recorder_before_monitor_captures_triggering_trace(tracer, clock):
    recorder = FlightRecorder(tracer, capacity=4)
    monitor = SloMonitor(
        tracer, [SloObjective(tenant="t0", objective=0.9, min_events=1)]
    )
    _complete_request(tracer, clock, "t0", ok=False)
    # The bad trace itself must already be in the dumped ring.
    assert len(recorder.dumps) == 1
    assert recorder.dumps[0]["trigger"]["name"] == "slo.alert"
    assert recorder.dumps[0]["traces"][-1]["status"] == "failed"
    monitor.detach()
    recorder.detach()


# -- exporters -------------------------------------------------------------


def _finished_trace(tracer, clock):
    ctx = tracer.start("req", tenant="t0", size=4096)
    clock.advance(1.0)
    ctx.phase("queue_wait")
    ctx.event("admission", depth=2)
    clock.advance(0.5)
    ctx.phase("transfer")
    ctx.finish("ok")
    return ctx


def test_trace_to_dict_and_jsonl_are_canonical(tracer, clock):
    ctx = _finished_trace(tracer, clock)
    payload = trace_to_dict(ctx)
    assert payload["latency"] == pytest.approx(1.5)
    assert list(payload["attrs"]) == sorted(payload["attrs"])
    line = export_trace_jsonl([ctx])
    parsed = json.loads(line)
    assert parsed["trace_id"] == ctx.trace_id
    # Canonical form: re-dumping with the same options is a fixpoint.
    assert json.dumps(parsed, sort_keys=True, separators=(",", ":")) == line


def test_chrome_trace_export_schema(tracer, clock):
    _finished_trace(tracer, clock)
    tracer.instant("fault.host_crash", target="h0")
    document = json.loads(export_chrome_trace(tracer.completed, tracer.instants))
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert isinstance(events, list) and events
    for event in events:
        for key in ("name", "ph", "ts", "pid", "tid"):
            assert key in event, f"missing {key!r} in {event}"
        assert event["ph"] in ("M", "X", "i")
        if event["ph"] == "X":
            assert "dur" in event and event["dur"] >= 0.0
        if event["ph"] == "i":
            assert event["s"] in ("t", "g")
    # Process metadata names the system lane and each tenant lane.
    names = {
        e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {"system", "tenant:t0"}
    # Phase slices nest inside their request's complete event.
    request = next(e for e in events if e["ph"] == "X" and e["cat"] == "request")
    for phase in (e for e in events if e["ph"] == "X" and e["cat"] == "phase"):
        assert phase["ts"] >= request["ts"]
        assert phase["ts"] + phase["dur"] <= request["ts"] + request["dur"] + 1e-6


def test_chrome_trace_microsecond_timestamps(tracer, clock):
    ctx = _finished_trace(tracer, clock)
    events = chrome_trace_events([ctx])
    request = next(e for e in events if e["ph"] == "X" and e["cat"] == "request")
    assert request["ts"] == pytest.approx(ctx.start * 1e6)
    assert request["dur"] == pytest.approx(ctx.latency * 1e6)


# -- histogram export sanity (satellite: exact max/sum + overflow) ---------


def test_histogram_reports_overflow_and_exact_extremes():
    histogram = Histogram("lat", bounds=[1.0, 2.0, 4.0])
    for value in (0.5, 1.5, 3.0, 10.0, 50.0):
        histogram.observe(value)
    dump = histogram.as_dict()
    assert dump["overflow"] == 2  # 10.0 and 50.0 beyond the last edge
    assert dump["sum"] == pytest.approx(65.0)
    assert dump["min"] == 0.5
    assert dump["max"] == 50.0
    # Bucket-derived percentiles can never exceed the true max.
    assert dump["p99"] <= dump["max"]
    assert dump["p50"] <= dump["max"]


def test_histogram_overflow_zero_when_all_in_range():
    histogram = Histogram("lat", bounds=[1.0, 2.0])
    histogram.observe(0.5)
    assert histogram.overflow == 0
    assert histogram.as_dict()["overflow"] == 0
