"""Unit tests for fabric components, topology and builders."""

import pytest

from repro.fabric import (
    Bridge,
    DiskNode,
    Fabric,
    FabricError,
    HostPort,
    Hub,
    Switch,
    SwitchSetting,
    dual_tree_fabric,
    prototype_fabric,
    ring_fabric,
)


def tiny_fabric():
    """disk -> bridge -> switch -> {hubA -> portA, hubB -> portB}."""
    f = Fabric()
    f.add(HostPort("pA", host_id="hostA"))
    f.add(HostPort("pB", host_id="hostB"))
    f.add(Hub("hubA"))
    f.add(Hub("hubB"))
    f.add(Switch("sw"))
    f.add(Bridge("br"))
    f.add(DiskNode("d0"))
    f.connect("hubA", "pA")
    f.connect("hubB", "pB")
    f.connect("sw", "hubA")
    f.connect("sw", "hubB")
    f.connect("br", "sw")
    f.connect("d0", "br")
    return f


class TestComponents:
    def test_switch_state_validation(self):
        sw = Switch("s")
        with pytest.raises(FabricError):
            sw.state = 2

    def test_switch_toggle(self):
        sw = Switch("s")
        assert sw.turn() == 1
        assert sw.turn() == 0
        assert sw.turn_count == 2

    def test_switch_turn_to_state(self):
        sw = Switch("s")
        assert sw.turn(1) == 1
        assert sw.state == 1

    def test_hub_fan_in_validation(self):
        with pytest.raises(FabricError):
            Hub("h", fan_in=0)

    def test_empty_node_id_rejected(self):
        with pytest.raises(FabricError):
            Hub("")

    def test_fail_and_repair(self):
        hub = Hub("h")
        hub.fail()
        assert hub.failed
        hub.repair()
        assert not hub.failed


class TestFabricConstruction:
    def test_duplicate_id_rejected(self):
        f = Fabric()
        f.add(Hub("h"))
        with pytest.raises(FabricError):
            f.add(Switch("h"))

    def test_host_port_has_no_upstream(self):
        f = Fabric()
        f.add(HostPort("p", host_id="h"))
        f.add(Hub("hub"))
        with pytest.raises(FabricError):
            f.connect("p", "hub")

    def test_disk_accepts_no_downstream(self):
        f = Fabric()
        f.add(DiskNode("d"))
        f.add(Bridge("b"))
        with pytest.raises(FabricError):
            f.connect("b", "d")

    def test_hub_fan_in_enforced(self):
        f = Fabric()
        f.add(Hub("h", fan_in=2))
        f.add(HostPort("p", host_id="x"))
        f.connect("h", "p")
        for i in range(2):
            f.add(Bridge(f"b{i}"))
            f.connect(f"b{i}", "h")
        f.add(Bridge("b2"))
        with pytest.raises(FabricError):
            f.connect("b2", "h")

    def test_switch_two_upstreams_max(self):
        f = Fabric()
        f.add(Switch("s"))
        for i in range(3):
            f.add(Hub(f"h{i}"))
        f.connect("s", "h0")
        f.connect("s", "h1")
        with pytest.raises(FabricError):
            f.connect("s", "h2")

    def test_non_switch_single_upstream(self):
        f = Fabric()
        f.add(Bridge("b"))
        f.add(Hub("h0"))
        f.add(Hub("h1"))
        f.connect("b", "h0")
        with pytest.raises(FabricError):
            f.connect("b", "h1")

    def test_unknown_node_rejected(self):
        f = Fabric()
        f.add(Hub("h"))
        with pytest.raises(FabricError):
            f.connect("h", "nope")


class TestRouting:
    def test_trace_up_follows_switch_state(self):
        f = tiny_fabric()
        assert f.trace_up("d0")[-1] == "pA"
        f.node("sw").turn(1)
        assert f.trace_up("d0")[-1] == "pB"

    def test_attached_host(self):
        f = tiny_fabric()
        assert f.attached_host("d0") == "hostA"
        f.node("sw").turn(1)
        assert f.attached_host("d0") == "hostB"

    def test_failed_component_breaks_attachment(self):
        f = tiny_fabric()
        f.node("hubA").fail()
        assert f.attached_host("d0") is None
        assert f.attached_host("d0", respect_failures=False) == "hostA"

    def test_failed_disk_detached(self):
        f = tiny_fabric()
        f.node("d0").fail()
        assert f.attached_host("d0") is None

    def test_paths_enumerate_both_branches(self):
        f = tiny_fabric()
        paths = f.paths("d0")
        assert {p.host_id for p in paths} == {"hostA", "hostB"}
        for p in paths:
            assert p.nodes[0] == "d0"
            assert len(p.settings) == 1

    def test_path_requires(self):
        f = tiny_fabric()
        to_b = [p for p in f.paths("d0") if p.host_id == "hostB"][0]
        assert to_b.requires("sw") == 1
        assert to_b.requires("other") is None

    def test_get_switch_settings(self):
        f = tiny_fabric()
        settings = f.get_switch_settings("d0", "hostB")
        assert settings == (SwitchSetting("sw", 1),)

    def test_get_switch_settings_unreachable(self):
        f = tiny_fabric()
        with pytest.raises(FabricError):
            f.get_switch_settings("d0", "nosuch")

    def test_reachable_hosts(self):
        f = tiny_fabric()
        assert set(f.reachable_hosts("d0")) == {"hostA", "hostB"}
        f.node("hubB").fail()
        assert f.reachable_hosts("d0") == ["hostA"]

    def test_apply_settings(self):
        f = tiny_fabric()
        f.apply_settings([SwitchSetting("sw", 1)])
        assert f.attached_host("d0") == "hostB"

    def test_apply_settings_rejects_non_switch(self):
        f = tiny_fabric()
        with pytest.raises(FabricError):
            f.apply_settings([SwitchSetting("hubA", 1)])

    def test_attachment_map(self):
        f = tiny_fabric()
        assert f.attachment_map() == {"d0": "hostA"}


class TestPrototypeFabric:
    def test_component_census(self):
        f = prototype_fabric()
        assert len(f.disks) == 16
        assert len(f.bridges) == 16
        assert len(f.hubs) == 12  # 8 leaf + 4 root
        assert len(f.switches) == 24  # 16 disk-level + 8 leaf-level
        assert len(f.host_ports) == 4
        assert len(f.hosts()) == 4

    def test_initial_attachment_balanced(self):
        f = prototype_fabric()
        attachment = f.attachment_map()
        per_host = {}
        for host in attachment.values():
            per_host[host] = per_host.get(host, 0) + 1
        assert per_host == {f"host{i}": 4 for i in range(4)}

    def test_every_disk_reaches_every_host(self):
        f = prototype_fabric()
        for disk in f.disks:
            assert len(f.reachable_hosts(disk.node_id, respect_failures=False)) == 4

    def test_path_crosses_two_hubs_two_switches(self):
        """§VII-A: 'The disk goes through two hubs, two switches and a bridge.'"""
        f = prototype_fabric()
        path = f.paths("disk0")[0]
        kinds = [f.node(n).kind.value for n in path.nodes]
        assert kinds.count("hub") == 2
        assert kinds.count("switch") == 2
        assert kinds.count("bridge") == 1

    def test_hub_depth(self):
        f = prototype_fabric()
        assert f.hub_depth("disk0") == 2


class TestRingFabricGeneral:
    def test_two_host_ring(self):
        f = ring_fabric(num_hosts=2, disks_per_leaf=2)
        assert len(f.disks) == 8
        for disk in f.disks:
            assert len(f.reachable_hosts(disk.node_id, respect_failures=False)) == 2

    def test_larger_unit(self):
        f = ring_fabric(num_hosts=4, disks_per_leaf=8, fan_in=16)
        assert len(f.disks) == 64
        attachment = f.attachment_map()
        counts = {}
        for host in attachment.values():
            counts[host] = counts.get(host, 0) + 1
        assert counts == {f"host{i}": 16 for i in range(4)}

    def test_disks_per_leaf_over_fan_in_rejected(self):
        # Each leaf hub hosts primary + alternate connectors, so
        # 2*disks_per_leaf must fit within the fan-in.
        with pytest.raises(FabricError):
            ring_fabric(num_hosts=4, disks_per_leaf=3, fan_in=4)

    def test_single_host_rejected(self):
        with pytest.raises(FabricError):
            ring_fabric(num_hosts=1)


class TestDualTreeFabric:
    def test_two_tree_census(self):
        f = dual_tree_fabric(num_disks=8, num_hosts=2, fan_in=4)
        assert len(f.disks) == 8
        assert len(f.switches) == 8  # one per disk
        assert len(f.hosts()) == 2

    def test_every_disk_reaches_both_hosts(self):
        f = dual_tree_fabric(num_disks=8, num_hosts=2, fan_in=4)
        for disk in f.disks:
            assert len(f.reachable_hosts(disk.node_id, respect_failures=False)) == 2

    def test_four_way_switching(self):
        f = dual_tree_fabric(num_disks=4, num_hosts=4, fan_in=4)
        for disk in f.disks:
            assert len(f.reachable_hosts(disk.node_id, respect_failures=False)) == 4
        # Switch chain depth log2(4) = 2 -> 3 switches per disk.
        assert len(f.switches) == 4 * 3

    def test_disks_independent(self):
        """Left design: moving one disk never moves another."""
        f = dual_tree_fabric(num_disks=4, num_hosts=2, fan_in=4)
        before = f.attachment_map()
        f.apply_settings(f.get_switch_settings("disk0", "host1"))
        after = f.attachment_map()
        assert after["disk0"] == "host1"
        for disk_id in before:
            if disk_id != "disk0":
                assert after[disk_id] == before[disk_id]

    def test_non_power_of_two_hosts_rejected(self):
        with pytest.raises(FabricError):
            dual_tree_fabric(num_disks=4, num_hosts=3)

    def test_hub_tree_multilevel(self):
        f = dual_tree_fabric(num_disks=32, num_hosts=2, fan_in=4)
        # 32 leaf slots -> 8 leaf hubs -> 2 mid hubs -> 1 root hub per tree.
        assert len(f.hubs) == 2 * (8 + 2 + 1)
        assert f.hub_depth("disk0") == 3
