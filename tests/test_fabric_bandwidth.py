"""Bandwidth fair-sharing model tests (the physics behind Figure 5)."""

import pytest

from repro.disk import ConnectionType, DiskModel
from repro.fabric import BandwidthModel, Flow, prototype_fabric, plan_switches, execute_plan
from repro.workload import KB, MB, AccessPattern, WorkloadSpec

MODEL = DiskModel(connection=ConnectionType.HUB_AND_SWITCH)


def flows_on_host(fabric, host, spec, count=None):
    """Build one flow per disk currently attached to ``host``."""
    disks = [d for d, h in fabric.attachment_map().items() if h == host]
    if count is not None:
        disks = disks[:count]
    demand = MODEL.demand_bytes_per_second(spec)
    return [
        Flow(
            flow_id=f"f-{d}",
            disk_id=d,
            demand=demand,
            is_read=spec.read_fraction >= 0.5,
            io_size=spec.transfer_size,
        )
        for d in disks
    ]


def gather_disks_on_host(fabric, host, wanted):
    """Move whole leaf groups onto ``host`` until it serves ``wanted`` disks.

    Moving leaf-hub siblings together keeps every command conflict-free
    on the prototype fabric (the shared leaf switch is wholly involved).
    """
    from repro.fabric import SwitchConflict

    group = 0
    while group < 8:
        mine = [d for d, h in fabric.attachment_map().items() if h == host]
        if len(mine) >= wanted:
            return mine[:wanted]
        siblings = [f"disk{2 * group}", f"disk{2 * group + 1}"]
        if fabric.attached_host(siblings[0]) != host:
            try:
                execute_plan(
                    fabric, plan_switches(fabric, [(d, host) for d in siblings])
                )
            except SwitchConflict:
                pass
        group += 1
    mine = [d for d, h in fabric.attachment_map().items() if h == host]
    return mine[:wanted]


class TestAllocation:
    def test_single_disk_disk_limited(self):
        f = prototype_fabric()
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        flows = flows_on_host(f, "host0", spec, count=1)
        allocation = BandwidthModel(f).allocate(flows)
        assert allocation.total() == pytest.approx(
            MODEL.demand_bytes_per_second(spec), rel=1e-6
        )

    def test_two_disks_saturate_root(self):
        """§VII-A: two disks fill the ~300MB/s root port on large I/O."""
        f = prototype_fabric()
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        flows = flows_on_host(f, "host0", spec, count=2)
        allocation = BandwidthModel(f).allocate(flows)
        assert allocation.total() == pytest.approx(300e6, rel=1e-6)

    def test_share_is_even(self):
        """§VII-A: bandwidth is shared evenly among disks on one host."""
        f = prototype_fabric()
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        flows = flows_on_host(f, "host0", spec, count=4)
        allocation = BandwidthModel(f).allocate(flows)
        rates = list(allocation.rates.values())
        assert max(rates) == pytest.approx(min(rates), rel=1e-9)
        assert rates[0] == pytest.approx(75e6, rel=1e-6)

    def test_duplex_reaches_540(self):
        """§VII-A: half reads + half writes total 540MB/s on one port."""
        f = prototype_fabric()
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        demand = MODEL.demand_bytes_per_second(spec)
        disks = [d for d, h in f.attachment_map().items() if h == "host0"]
        flows = [
            Flow(f"f{i}", d, demand, is_read=(i % 2 == 0), io_size=4 * MB)
            for i, d in enumerate(disks)
        ]
        allocation = BandwidthModel(f).allocate(flows)
        assert allocation.total() == pytest.approx(540e6, rel=1e-6)

    def test_one_direction_capped_at_300(self):
        f = prototype_fabric()
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        flows = flows_on_host(f, "host0", spec, count=4)
        allocation = BandwidthModel(f).allocate(flows)
        assert allocation.total() == pytest.approx(300e6, rel=1e-6)

    def test_small_io_hits_command_rate(self):
        """4KB flows saturate the per-port IOPS budget, not bytes."""
        f = prototype_fabric()
        spec = WorkloadSpec(4 * KB, AccessPattern.SEQUENTIAL, 1.0)
        flows = flows_on_host(f, "host0", spec, count=4)
        for extra_host in ("host1", "host2", "host3"):
            flows += flows_on_host(f, extra_host, spec, count=4)
        # All 16 disks: each root port carries only its own 4 disks.
        allocation = BandwidthModel(f).allocate(flows)
        per_disk = MODEL.demand_bytes_per_second(spec)
        # 4 disks/port at ~5.2k IO/s each is under the 45k budget.
        assert allocation.total() == pytest.approx(16 * per_disk, rel=1e-6)

    def test_twelve_disks_on_one_host_saturate_iops(self):
        """Figure 5: the 4KB sequential curve flattens by 8-12 disks."""
        f = prototype_fabric()
        disks = gather_disks_on_host(f, "host0", 12)
        assert len(disks) == 12
        spec = WorkloadSpec(4 * KB, AccessPattern.SEQUENTIAL, 1.0)
        demand = MODEL.demand_bytes_per_second(spec)
        flows = [Flow(f"f{d}", d, demand, is_read=True, io_size=4 * KB) for d in disks]
        allocation = BandwidthModel(f).allocate(flows)
        total_iops = allocation.total() / (4 * KB)
        assert total_iops == pytest.approx(45_000, rel=1e-6)

    def test_flows_on_different_hosts_independent(self):
        f = prototype_fabric()
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        flows = flows_on_host(f, "host0", spec, count=2) + flows_on_host(
            f, "host1", spec, count=2
        )
        allocation = BandwidthModel(f).allocate(flows)
        assert allocation.total() == pytest.approx(600e6, rel=1e-6)

    def test_four_port_aggregate_2160(self):
        """§VII-A: 4 root paths at 540MB/s duplex total 2160MB/s."""
        f = prototype_fabric()
        spec = WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
        demand = MODEL.demand_bytes_per_second(spec)
        flows = []
        for host_index in range(4):
            disks = [
                d for d, h in f.attachment_map().items() if h == f"host{host_index}"
            ]
            for i, d in enumerate(disks):
                flows.append(
                    Flow(f"f{d}", d, demand, is_read=(i % 2 == 0), io_size=4 * MB)
                )
        allocation = BandwidthModel(f).allocate(flows)
        assert allocation.total() == pytest.approx(2160e6, rel=1e-6)

    def test_detached_disk_rejected(self):
        f = prototype_fabric()
        f.node("leafhub0").fail()
        flow = Flow("x", "disk0", 100e6, is_read=True)
        with pytest.raises(ValueError):
            BandwidthModel(f).allocate([flow])

    def test_duplicate_flow_id_rejected(self):
        f = prototype_fabric()
        flows = [
            Flow("same", "disk0", 1e6, is_read=True),
            Flow("same", "disk1", 1e6, is_read=True),
        ]
        with pytest.raises(ValueError):
            BandwidthModel(f).allocate(flows)

    def test_empty_flows(self):
        f = prototype_fabric()
        assert BandwidthModel(f).allocate([]).total() == 0.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            Flow("x", "disk0", -1.0, is_read=True)

    def test_demand_cap_respected(self):
        f = prototype_fabric()
        flows = [Flow("slow", "disk0", 5e6, is_read=True)]
        allocation = BandwidthModel(f).allocate(flows)
        assert allocation.rate("slow") == pytest.approx(5e6)
