"""Fixture: clean counterpart to proc003_bad — callbacks only signal."""


def watcher(sim, done_event, store):
    def on_done(event):
        store.put(event)

    done_event.callbacks.append(on_done)
    yield sim.timeout(1.0)


def poller(sim, wake):
    def bump(_event):
        wake.succeed(None)

    sim.call_in(0.5, bump)
    yield sim.timeout(1.0)
