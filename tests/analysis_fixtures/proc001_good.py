"""Fixture: clean counterpart to proc001_bad — try/finally discipline."""


def careful(sim, disk):
    yield disk.request()
    try:
        yield sim.timeout(1.0)
    finally:
        disk.release()


def immediate(sim, disk):
    yield disk.request()
    disk.release()
    yield sim.timeout(1.0)
