"""Fixture: DET005 — binding the name ``random`` shadows the module."""


def synthetic_dataset(rng):
    random = rng.stream("dataset")
    return [random.randrange(256) for _ in range(8)]


def consume(random):
    return random.random()
