"""Fixture: DET002 — wall-clock reads inside simulation code."""

import time
from datetime import datetime
from time import monotonic


def stamp_record():
    return time.time()


def measure():
    return monotonic()


def label_run():
    return datetime.now().isoformat()
