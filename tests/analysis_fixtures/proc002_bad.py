"""Fixture: PROC002 — blocking calls inside sim processes."""

import subprocess
import time


def stall(sim):
    time.sleep(0.5)
    handle = open("trace.bin", "rb")
    del handle
    yield sim.timeout(1.0)


def shell_out(sim):
    subprocess.run(["sync"])
    yield sim.timeout(1.0)
