"""Fixture: clean counterpart to unit005_bad — declared scale constants."""

from repro.units import MB, MiB, Bytes, BytesPerSec


def to_megabytes(total: Bytes) -> float:
    return total / MB


def chunk_count(rate: BytesPerSec) -> float:
    return rate / MiB
