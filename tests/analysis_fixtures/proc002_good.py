"""Fixture: clean counterpart to proc002_bad — sim time only.

Real I/O happens outside the simulation; the process advances
simulated time through kernel events.
"""


def stage(path):
    # Not a sim generator: plain setup code may do real I/O.
    with open(path, "rb") as handle:
        return handle.read()


def wait(sim):
    yield sim.timeout(0.5)
    yield sim.timeout(1.0)
