"""Fixture: UNIT004 — unconverted dimension across a call boundary."""

from repro.units import BytesPerSec, MBps


def admit(rate: BytesPerSec) -> None:
    del rate


def handoff(paper_rate: MBps) -> None:
    admit(paper_rate)
    admit(rate=paper_rate)
