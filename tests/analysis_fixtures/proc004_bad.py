"""Fixture: PROC004 — broad except swallows kernel Interrupts."""


def fragile(sim):
    try:
        yield sim.timeout(1.0)
    except Exception:
        return


def wrapped(sim, log):
    try:
        yield sim.timeout(1.0)
    except (ValueError, Exception) as exc:
        log.append(str(exc))
