"""Fixture: UNIT003 — derived dimension contradicts the declaration."""

from repro.units import Joules, SimSeconds, Watts


def integrate(power: Watts, elapsed: SimSeconds) -> Joules:
    reading: Joules = power
    del reading
    return power
