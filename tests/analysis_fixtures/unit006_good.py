"""Fixture: clean counterpart to unit006_bad — suffix matches the value."""

from repro.units import SimSeconds, Watts, watt_seconds


def label(power: Watts, elapsed: SimSeconds) -> None:
    total_watts = power
    total_joules = watt_seconds(power, elapsed)
    del total_watts, total_joules
