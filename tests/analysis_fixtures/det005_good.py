"""Fixture: clean counterpart to det005_bad — streams named explicitly."""


def synthetic_dataset(rng):
    rand = rng.stream("dataset")
    return [rand.randrange(256) for _ in range(8)]


def consume(rand):
    return rand.random()


class RandomSource:
    """A method named ``random`` (mirroring the ``random.Random`` API)
    lives in the class namespace and shadows nothing."""

    def random(self):
        return 0.5
