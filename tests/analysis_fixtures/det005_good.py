"""Fixture: clean counterpart to det005_bad — streams named explicitly."""


def synthetic_dataset(rng):
    rand = rng.stream("dataset")
    return [rand.randrange(256) for _ in range(8)]


def consume(rand):
    return rand.random()
