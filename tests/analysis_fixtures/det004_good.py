"""Fixture: clean counterpart to det004_bad — None defaults, factories."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional


def enqueue(item, queue: Optional[List] = None):
    if queue is None:
        queue = []
    queue.append(item)
    return queue


@dataclass
class Registry:
    entries: Dict[str, int] = field(default_factory=dict)
