"""Fixture: clean counterpart to unit002_bad — same-dimension compares."""

from repro.units import BytesPerSec, MBps, Watts, mbps_to_bytes_per_sec


def over_budget(power: Watts, ceiling: Watts) -> bool:
    return power > ceiling


def saturated(native: BytesPerSec, quoted: MBps) -> bool:
    return native >= mbps_to_bytes_per_sec(quoted)
