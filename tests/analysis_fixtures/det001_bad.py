"""Fixture: DET001 — direct use of the global random module."""

import random
from random import choice


def pick_disk(disks):
    return choice(disks)


def jitter():
    return random.random() * 0.5


def shuffle_hosts(hosts):
    random.shuffle(hosts)
    return hosts
