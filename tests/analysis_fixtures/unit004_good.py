"""Fixture: clean counterpart to unit004_bad — converts at the boundary."""

from repro.units import BytesPerSec, MBps, mbps_to_bytes_per_sec


def admit(rate: BytesPerSec) -> None:
    del rate


def handoff(paper_rate: MBps) -> None:
    admit(mbps_to_bytes_per_sec(paper_rate))
    admit(rate=mbps_to_bytes_per_sec(paper_rate))
