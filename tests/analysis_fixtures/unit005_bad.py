"""Fixture: UNIT005 — byte-scale magic literal in dimensioned math."""

from repro.units import Bytes, BytesPerSec


def to_megabytes(total: Bytes) -> float:
    return total / 1e6


def chunk_count(rate: BytesPerSec) -> float:
    return rate / (1 << 20)
