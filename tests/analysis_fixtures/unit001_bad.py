"""Fixture: UNIT001 — additive arithmetic mixing dimensions."""

from repro.units import Joules, SimSeconds, Watts


def total_draw(power: Watts, energy: Joules) -> float:
    return power + energy


def drift(deadline: SimSeconds, budget: Watts) -> float:
    return min(deadline, budget)
