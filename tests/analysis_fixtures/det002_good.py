"""Fixture: clean counterpart to det002_bad — uses simulated time."""

from datetime import datetime, timezone


def stamp_record(sim):
    return sim.now


def label_run(sim):
    # Deriving a datetime from simulated time is fine; only argless
    # now()/today() read the wall clock.
    return datetime.fromtimestamp(sim.now, tz=timezone.utc).isoformat()
