"""Fixture: PROC001 — resource acquired but not released safely."""


def leaky(sim, disk):
    slot = yield disk.request()
    yield sim.timeout(1.0)
    del slot  # never released: an interrupt leaks the slot


def unguarded(sim, disk):
    yield disk.request()
    yield sim.timeout(1.0)
    disk.release()  # release exists but no try/finally guards the yield
