"""Fixture: DET003 — set iteration order feeds event scheduling."""


def boot_hosts(sim, hosts):
    pending = set(hosts)
    for host in pending:
        sim.schedule(host)


def kick_literal(sim):
    for host in {"h0", "h1", "h2"}:
        sim.call_in(0.0, host)


class Fabric:
    members: set

    def wake_all(self, sim):
        return [sim.process(member) for member in self.members]
