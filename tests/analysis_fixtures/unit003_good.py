"""Fixture: clean counterpart to unit003_bad — dimensions line up."""

from repro.units import Joules, SimSeconds, Watts


def integrate(power: Watts, elapsed: SimSeconds) -> Joules:
    reading: Joules = Joules(power * elapsed)
    return reading
