"""Fixture: DET004 — mutable defaults shared across calls/instances."""

from collections import defaultdict


def enqueue(item, queue=[]):
    queue.append(item)
    return queue


def index(key, table=defaultdict(list)):
    return table[key]


class Registry:
    entries = {}
    counters: dict = dict()
