"""Fixture: UNIT006 — unit-suffixed name bound to the wrong dimension."""

from repro.units import Watts


def mislabel(power: Watts) -> None:
    total_joules = power
    del total_joules
