"""Fixture: clean counterpart to det003_bad — sorted before scheduling."""


def boot_hosts(sim, hosts):
    pending = set(hosts)
    for host in sorted(pending):
        sim.schedule(host)


def tally(hosts):
    # Iterating a set is fine when nothing is scheduled from the loop.
    seen = set(hosts)
    total = 0
    for host in seen:
        total += len(host)
    return total
