"""Fixture: UNIT002 — comparisons across dimensions."""

from repro.units import BytesPerSec, Joules, MBps, Watts


def over_budget(power: Watts, energy: Joules) -> bool:
    return power > energy


def saturated(native: BytesPerSec, quoted: MBps) -> bool:
    return native >= quoted
