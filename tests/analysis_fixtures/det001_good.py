"""Fixture: clean counterpart to det001_bad — draws from named streams."""


def pick_disk(rng, disks):
    rand = rng.stream("placement")
    return disks[rand.randrange(len(disks))]


def jitter(rng):
    return rng.stream("jitter").random() * 0.5
