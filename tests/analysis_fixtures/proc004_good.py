"""Fixture: clean counterpart to proc004_bad — Interrupt stays visible."""

from repro.sim import Interrupt


def robust(sim):
    try:
        yield sim.timeout(1.0)
    except Interrupt:
        raise
    except Exception:
        return


def narrow(sim, log):
    try:
        yield sim.timeout(1.0)
    except ValueError as exc:
        log.append(str(exc))


def reraising(sim):
    try:
        yield sim.timeout(1.0)
    except Exception:
        raise
