"""Fixture: every violation here carries an inline suppression."""

import random  # repro-lint: ignore[DET001]


def legacy_jitter():
    return random.random()  # repro-lint: ignore[DET001, DET005]


def scratch(queue=[]):  # repro-lint: ignore[all]
    return queue
