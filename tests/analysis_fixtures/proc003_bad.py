"""Fixture: PROC003 — event callback mutating enclosing shared state."""


def watcher(sim, done_event):
    seen = []

    def on_done(event):
        seen.append(event)

    done_event.callbacks.append(on_done)
    yield sim.timeout(1.0)


def poller(sim, counters):
    def bump(_event):
        counters["fired"] = True

    sim.call_in(0.5, bump)
    yield sim.timeout(1.0)
