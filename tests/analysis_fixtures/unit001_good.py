"""Fixture: clean counterpart to unit001_bad — converts before adding."""

from repro.units import Joules, SimSeconds, Watts, watt_seconds


def total_energy(power: Watts, elapsed: SimSeconds, carry: Joules) -> Joules:
    return Joules(watt_seconds(power, elapsed) + carry)


def tightest(first: SimSeconds, second: SimSeconds) -> SimSeconds:
    return min(first, second)
