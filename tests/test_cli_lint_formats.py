"""``repro lint`` CLI output contracts: text and ``--json`` formats.

Runs the CLI in-process against the lint fixtures, covering a mixed
DET+UNIT+PROC run, the suppression counters, and exit codes.
"""

import json
from pathlib import Path

from repro.analysis import all_rule_ids
from repro.cli import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def run_lint(capsys, *argv):
    status = main(["lint", *argv])
    return status, capsys.readouterr().out


def test_text_output_on_clean_fixture(capsys):
    status, out = run_lint(capsys, str(FIXTURES / "det001_good.py"))
    assert status == 0
    assert "0 finding(s), 0 suppressed, 1 file(s) checked" in out


def test_text_output_lists_findings_with_location(capsys):
    status, out = run_lint(capsys, str(FIXTURES / "unit001_bad.py"))
    assert status == 1
    assert "UNIT001" in out
    assert "unit001_bad.py:" in out


def test_json_output_is_machine_readable(capsys):
    status, out = run_lint(capsys, "--json", str(FIXTURES / "unit001_bad.py"))
    assert status == 1
    data = json.loads(out)
    assert data["ok"] is False
    assert data["files_checked"] == 1
    finding = data["findings"][0]
    assert set(finding) == {"file", "line", "rule", "severity", "message"}
    assert finding["rule"] == "UNIT001"
    assert finding["line"] > 0
    assert data["by_rule"]["UNIT001"] == len(data["findings"])


def test_json_mixed_families_in_one_run(capsys):
    paths = [
        str(FIXTURES / name)
        for name in ("det001_bad.py", "unit005_bad.py", "proc002_bad.py")
    ]
    status, out = run_lint(capsys, "--json", *paths)
    assert status == 1
    data = json.loads(out)
    assert data["files_checked"] == 3
    fired = set(data["by_rule"])
    assert {"DET001", "UNIT005", "PROC002"} <= fired
    # Every reported rule id is a registered rule.
    assert fired <= set(all_rule_ids())


def test_json_counts_suppressions_by_rule(capsys):
    status, out = run_lint(capsys, "--json", str(FIXTURES / "suppressed.py"))
    assert status == 0
    data = json.loads(out)
    assert data["ok"] is True
    assert data["findings"] == []
    assert sum(data["suppressed_by_rule"].values()) == 3
    assert set(data["suppressed_by_rule"]) == {"DET001", "DET004"}
    assert len(data["suppressed"]) == 3
    assert all(s["rule"] in {"DET001", "DET004"} for s in data["suppressed"])


def test_text_audit_and_json_agree_on_suppressions(capsys):
    _, text_out = run_lint(capsys, "--audit", str(FIXTURES / "suppressed.py"))
    assert "Suppressions in effect (3):" in text_out
    _, json_out = run_lint(capsys, "--json", str(FIXTURES / "suppressed.py"))
    assert sum(json.loads(json_out)["suppressed_by_rule"].values()) == 3


def test_json_reports_parse_errors(capsys, tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    status, out = run_lint(capsys, "--json", str(bad))
    assert status == 1
    data = json.loads(out)
    assert data["ok"] is False
    assert data["parse_errors"]
