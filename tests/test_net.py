"""Tests for the simulated network, RPC and iSCSI layers."""

import pytest

from repro.disk import SimulatedDisk
from repro.net import (
    IscsiInitiator,
    IscsiTargetServer,
    Network,
    RemoteError,
    RpcClient,
    RpcServer,
    RpcTimeout,
    SessionError,
    StorageVolume,
)
from repro.sim import Interrupt, Simulator
from repro.workload import KB, MB


def make_net():
    sim = Simulator()
    return sim, Network(sim, jitter=0.0)


class TestNetwork:
    def test_delivery_with_latency(self):
        sim, net = make_net()
        net.add_node("a")
        b = net.add_node("b")
        net.send("a", "b", "hello", size=0)
        message = sim.run_until_event(b.receive())
        assert message.payload == "hello"
        assert sim.now == pytest.approx(net.latency)

    def test_size_adds_serialization_delay(self):
        sim, net = make_net()
        net.add_node("a")
        b = net.add_node("b")
        net.send("a", "b", "big", size=1_250_000)  # 10 ms at 1 GbE
        sim.run_until_event(b.receive())
        assert sim.now == pytest.approx(net.latency + 0.01)

    def test_dead_receiver_drops(self):
        sim, net = make_net()
        net.add_node("a")
        net.add_node("b")
        net.set_alive("b", False)
        net.send("a", "b", "x")
        sim.run()
        assert net.dropped_count == 1
        assert len(net.node("b").inbox.items) == 0

    def test_dead_sender_drops(self):
        sim, net = make_net()
        net.add_node("a")
        net.add_node("b")
        net.set_alive("a", False)
        net.send("a", "b", "x")
        sim.run()
        assert net.dropped_count == 1

    def test_unknown_destination_drops(self):
        sim, net = make_net()
        net.add_node("a")
        net.send("a", "ghost", "x")
        assert net.dropped_count == 1

    def test_unknown_sender_raises(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.send("ghost", "a", "x")

    def test_partition_blocks_both_ways(self):
        sim, net = make_net()
        net.add_node("a")
        net.add_node("b")
        net.partition("a", "b")
        net.send("a", "b", "x")
        net.send("b", "a", "y")
        sim.run()
        assert net.dropped_count == 2
        net.heal("a", "b")
        net.send("a", "b", "z")
        sim.run()
        assert net.delivered_count == 1

    def test_duplicate_address_rejected(self):
        _, net = make_net()
        net.add_node("a")
        with pytest.raises(ValueError):
            net.add_node("a")


class TestRpc:
    def test_basic_call(self):
        sim, net = make_net()
        server = RpcServer(sim, net, "server")
        server.register("add", lambda a, b: a + b)
        client = RpcClient(sim, net, "client")
        result = sim.run_until_event(sim.process(client.call("server", "add", 2, 3)))
        assert result == 5

    def test_kwargs(self):
        sim, net = make_net()
        server = RpcServer(sim, net, "server")
        server.register("greet", lambda name="world": f"hi {name}")
        client = RpcClient(sim, net, "client")
        result = sim.run_until_event(
            sim.process(client.call("server", "greet", name="ustore"))
        )
        assert result == "hi ustore"

    def test_generator_handler(self):
        sim, net = make_net()
        server = RpcServer(sim, net, "server")

        def slow():
            yield sim.timeout(1.0)
            return "done"

        server.register("slow", slow)
        client = RpcClient(sim, net, "client")
        result = sim.run_until_event(sim.process(client.call("server", "slow")))
        assert result == "done"
        assert sim.now > 1.0

    def test_handler_interrupt_reaches_kernel_not_caller(self):
        # Regression: the dispatch loop once swallowed kernel Interrupts
        # in its broad handler and forwarded them as RPC errors.  A
        # teardown interrupt must propagate, not become a response.
        sim, net = make_net()
        server = RpcServer(sim, net, "server")

        def stuck():
            poke = sim.event()
            sim.call_in(0.5, lambda: poke.fail(Interrupt("teardown")))
            yield poke

        server.register("stuck", stuck)
        client = RpcClient(sim, net, "client")
        sim.process(client.call("server", "stuck", timeout=10.0))
        with pytest.raises(Interrupt):
            sim.run()
        assert server.requests_served == 0

    def test_remote_exception(self):
        sim, net = make_net()
        server = RpcServer(sim, net, "server")

        def boom():
            raise ValueError("nope")

        server.register("boom", boom)
        client = RpcClient(sim, net, "client")
        with pytest.raises(RemoteError, match="nope"):
            sim.run_until_event(sim.process(client.call("server", "boom")))

    def test_unknown_method(self):
        sim, net = make_net()
        RpcServer(sim, net, "server")
        client = RpcClient(sim, net, "client")
        with pytest.raises(RemoteError, match="no such method"):
            sim.run_until_event(sim.process(client.call("server", "missing")))

    def test_timeout_on_dead_server(self):
        sim, net = make_net()
        RpcServer(sim, net, "server")
        net.set_alive("server", False)
        client = RpcClient(sim, net, "client")
        with pytest.raises(RpcTimeout):
            sim.run_until_event(
                sim.process(client.call("server", "x", timeout=1.0))
            )
        assert sim.now == pytest.approx(1.0)

    def test_duplicate_handler_rejected(self):
        sim, net = make_net()
        server = RpcServer(sim, net, "server")
        server.register("m", lambda: 1)
        with pytest.raises(ValueError):
            server.register("m", lambda: 2)

    def test_concurrent_calls(self):
        sim, net = make_net()
        server = RpcServer(sim, net, "server")
        server.register("echo", lambda x: x)
        client = RpcClient(sim, net, "client")
        procs = [sim.process(client.call("server", "echo", i)) for i in range(10)]
        results = sim.run_until_event(sim.all_of(procs))
        assert results == list(range(10))


class TestIscsi:
    def setup_stack(self):
        sim = Simulator()
        net = Network(sim, jitter=0.0)
        target = IscsiTargetServer(sim, net, "host0")
        disk = SimulatedDisk(sim, "disk0")
        target.expose("tgt-disk0", StorageVolume("vol0", disk, offset=0, length=100 * MB))
        initiator = IscsiInitiator(sim, net, "client0")
        return sim, net, target, disk, initiator

    def test_login_and_read(self):
        sim, net, target, disk, initiator = self.setup_stack()

        def scenario():
            session = yield from initiator.login("host0", "tgt-disk0")
            result = yield from session.read(0, 4 * MB)
            return result

        result = sim.run_until_event(sim.process(scenario()))
        assert result["ok"]
        assert disk.completed_ios == 1
        assert disk.bytes_read == 4 * MB

    def test_write(self):
        sim, net, target, disk, initiator = self.setup_stack()

        def scenario():
            session = yield from initiator.login("host0", "tgt-disk0")
            yield from session.write(0, 1 * MB)

        sim.run_until_event(sim.process(scenario()))
        assert disk.bytes_written == 1 * MB

    def test_login_missing_target(self):
        sim, net, target, disk, initiator = self.setup_stack()

        def scenario():
            yield from initiator.login("host0", "no-such-target")

        with pytest.raises(SessionError):
            sim.run_until_event(sim.process(scenario()))

    def test_io_beyond_volume_rejected(self):
        sim, net, target, disk, initiator = self.setup_stack()

        def scenario():
            session = yield from initiator.login("host0", "tgt-disk0")
            yield from session.read(99 * MB, 4 * MB)

        with pytest.raises(SessionError):
            sim.run_until_event(sim.process(scenario()))

    def test_withdraw_breaks_session(self):
        sim, net, target, disk, initiator = self.setup_stack()

        def scenario():
            session = yield from initiator.login("host0", "tgt-disk0")
            target.withdraw("tgt-disk0")
            yield from session.read(0, 4 * KB)

        with pytest.raises(SessionError):
            sim.run_until_event(sim.process(scenario()))

    def test_host_death_times_out_session(self):
        sim, net, target, disk, initiator = self.setup_stack()
        initiator.io_timeout = 2.0

        def scenario():
            session = yield from initiator.login("host0", "tgt-disk0")
            net.set_alive("host0", False)
            yield from session.read(0, 4 * KB)

        with pytest.raises(SessionError):
            sim.run_until_event(sim.process(scenario()))

    def test_logout(self):
        sim, net, target, disk, initiator = self.setup_stack()

        def scenario():
            session = yield from initiator.login("host0", "tgt-disk0")
            yield from session.logout()
            assert not session.connected

        sim.run_until_event(sim.process(scenario()))

    def test_session_after_logout_rejected(self):
        sim, net, target, disk, initiator = self.setup_stack()

        def scenario():
            session = yield from initiator.login("host0", "tgt-disk0")
            yield from session.logout()
            yield from session.read(0, 4 * KB)

        with pytest.raises(SessionError):
            sim.run_until_event(sim.process(scenario()))

    def test_volume_translation(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d")
        volume = StorageVolume("v", disk, offset=10 * MB, length=10 * MB)
        done = volume.submit(0, 4 * KB, is_read=True)
        sim.run_until_event(done)
        # The disk's sequential detector saw offset 10MB, not 0.
        assert disk._last_offset_end == 10 * MB + 4 * KB

    def test_double_expose_rejected(self):
        sim, net, target, disk, initiator = self.setup_stack()
        with pytest.raises(ValueError):
            target.expose("tgt-disk0", StorageVolume("v2", disk))

    def test_list_targets(self):
        sim, net, target, disk, initiator = self.setup_stack()

        def scenario():
            result = yield from initiator.rpc.call("host0", "iscsi.list_targets")
            return result

        assert sim.run_until_event(sim.process(scenario())) == ["tgt-disk0"]
