"""Unit tests for the §IV-F spin-down policies (repro.power.policy).

The thrash-detection path of :class:`AdaptiveTimeoutPolicy` is covered
directly — wake-up counting against the window, doubling past the
limit, the event-list reset after each doubling, compounding and the
``max_timeout`` cap — plus ``run_policy`` integration against a real
:class:`SimulatedDisk` thrashing on purpose.
"""

import pytest

from repro.disk.device import IoRequest, SimulatedDisk
from repro.disk.states import DiskPowerState
from repro.power.policy import AdaptiveTimeoutPolicy, FixedTimeoutPolicy, run_policy
from repro.sim import Simulator


class TestFixedTimeoutPolicy:
    def test_constant_timeout(self):
        policy = FixedTimeoutPolicy(idle_timeout=120.0)
        assert policy.timeout_for("d0") == 120.0
        assert policy.timeout_for("anything") == 120.0

    def test_ignores_wakeups(self):
        policy = FixedTimeoutPolicy(idle_timeout=120.0)
        for t in range(10):
            policy.on_spin_up("d0", float(t))
        assert policy.timeout_for("d0") == 120.0


class TestAdaptiveThrashDetection:
    def make(self, **kwargs):
        defaults = dict(idle_timeout=300.0, thrash_limit=3, thrash_window=3600.0)
        defaults.update(kwargs)
        return AdaptiveTimeoutPolicy(**defaults)

    def test_default_timeout_before_any_wakeup(self):
        assert self.make().timeout_for("d0") == 300.0

    def test_wakeups_at_the_limit_do_not_double(self):
        policy = self.make()
        for t in (0.0, 1.0, 2.0):  # exactly thrash_limit wake-ups
            policy.on_spin_up("d0", t)
        assert policy.timeout_for("d0") == 300.0

    def test_wakeup_beyond_limit_doubles(self):
        policy = self.make()
        for t in (0.0, 1.0, 2.0, 3.0):
            policy.on_spin_up("d0", t)
        assert policy.timeout_for("d0") == 600.0

    def test_events_cleared_after_doubling(self):
        """Each doubling resets the count: the next one needs a fresh
        limit-exceeding burst, not just one more wake-up."""
        policy = self.make()
        for t in (0.0, 1.0, 2.0, 3.0):
            policy.on_spin_up("d0", t)
        assert policy.timeout_for("d0") == 600.0
        # Three more wake-ups only reach the limit again — no doubling.
        for t in (4.0, 5.0, 6.0):
            policy.on_spin_up("d0", t)
        assert policy.timeout_for("d0") == 600.0
        # The fourth post-reset wake-up crosses it.
        policy.on_spin_up("d0", 7.0)
        assert policy.timeout_for("d0") == 1200.0

    def test_doubling_caps_at_max_timeout(self):
        policy = self.make(max_timeout=1000.0)
        for t in range(8):  # two limit-exceeding bursts
            policy.on_spin_up("d0", float(t))
        assert policy.timeout_for("d0") == 1000.0  # min(1200, cap)
        for t in range(8, 12):
            policy.on_spin_up("d0", float(t))
        assert policy.timeout_for("d0") == 1000.0  # stays pinned

    def test_old_wakeups_pruned_from_window(self):
        policy = self.make(thrash_window=100.0)
        for t in (0.0, 1.0, 2.0):
            policy.on_spin_up("d0", t)
        # Far outside the window: the burst above no longer counts.
        policy.on_spin_up("d0", 500.0)
        assert policy.timeout_for("d0") == 300.0
        # A fresh in-window burst still trips the detector.
        for t in (501.0, 502.0, 503.0):
            policy.on_spin_up("d0", t)
        assert policy.timeout_for("d0") == 600.0

    def test_disks_are_isolated(self):
        policy = self.make()
        for t in (0.0, 1.0, 2.0, 3.0):
            policy.on_spin_up("thrasher", t)
        assert policy.timeout_for("thrasher") == 600.0
        assert policy.timeout_for("quiet") == 300.0


class TestRunPolicyIntegration:
    def test_fixed_policy_spins_down_idle_disk(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        run_policy(sim, {"d0": disk}, FixedTimeoutPolicy(idle_timeout=2.0),
                   check_interval=0.5)
        sim.run(until=5.0)
        assert disk.power_state is DiskPowerState.SPUN_DOWN

    def test_thrashing_disk_gets_its_timeout_doubled(self):
        """An I/O-every-12s workload against a 1s idle timeout forces a
        spin cycle per request; the adaptive policy must react by
        raising that disk's timeout."""
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        policy = AdaptiveTimeoutPolicy(
            idle_timeout=1.0, thrash_limit=1, thrash_window=1000.0
        )
        run_policy(sim, {"d0": disk}, policy, check_interval=0.5)

        def thrash():
            for i in range(5):
                yield disk.submit(IoRequest(offset=0, size=4096, is_read=True))
                yield sim.timeout(12.0)

        sim.run_until_event(sim.process(thrash()))
        assert disk.states.spin_up_count >= 2
        assert policy.timeout_for("d0") > policy.idle_timeout

    def test_raised_timeout_stops_the_thrash(self):
        """Once doubled past the gap between requests, the disk stays
        spinning and spin-ups stop accumulating."""
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        policy = AdaptiveTimeoutPolicy(
            idle_timeout=1.0, thrash_limit=1, thrash_window=1000.0,
            max_timeout=64.0,
        )
        run_policy(sim, {"d0": disk}, policy, check_interval=0.5)

        def thrash():
            for i in range(12):
                yield disk.submit(IoRequest(offset=0, size=4096, is_read=True))
                yield sim.timeout(12.0)

        sim.run_until_event(sim.process(thrash()))
        # Doubling stops once the timeout clears the ~12s request gap:
        # the disk no longer spins down between requests, so no further
        # wake-ups feed the detector and the timeout settles.
        assert policy.timeout_for("d0") >= 16.0
        # Far fewer spin cycles than requests: the tail of the workload
        # ran against a disk the policy had learned to keep on.
        assert 1 <= disk.states.spin_up_count < 12

    def test_run_policy_rejects_nothing_silently(self):
        """A disk that never idles is never spun down."""
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        run_policy(sim, {"d0": disk}, FixedTimeoutPolicy(idle_timeout=5.0),
                   check_interval=1.0)

        def busy():
            for i in range(20):
                yield disk.submit(IoRequest(offset=0, size=1 << 20, is_read=True))
                yield sim.timeout(0.5)

        sim.run_until_event(sim.process(busy()))
        assert disk.states.spin_up_count == 0
        assert disk.power_state is not DiskPowerState.SPUN_DOWN


class CountingPolicy:
    """Probe policy: counts timeout queries and records wake-ups."""

    def __init__(self, idle_timeout=1e9):
        self.idle_timeout = idle_timeout
        self.wakeups = []
        self.timeout_queries = 0

    def timeout_for(self, disk_id):
        self.timeout_queries += 1
        return self.idle_timeout

    def on_spin_up(self, disk_id, now):
        self.wakeups.append((disk_id, now))


class TestPolicyHandle:
    def submit_one(self, sim, disk):
        def io():
            yield disk.submit(IoRequest(offset=0, size=4096, is_read=True))

        sim.run_until_event(sim.process(io()))

    def test_stop_mid_flight_halts_spin_downs(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        handle = run_policy(sim, {"d0": disk}, FixedTimeoutPolicy(idle_timeout=5.0),
                            check_interval=1.0)
        sim.run(until=2.0)
        handle.stop()
        sim.run(until=30.0)
        assert disk.power_state is not DiskPowerState.SPUN_DOWN

    def test_stop_detaches_spin_up_listeners(self):
        """After stop() the policy must observe nothing: wake-ups reach
        it through disk listeners, and stop unhooks them immediately."""
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        policy = CountingPolicy()
        handle = run_policy(sim, {"d0": disk}, policy, check_interval=1.0)
        disk.spin_down()
        self.submit_one(sim, disk)
        assert len(policy.wakeups) == 1
        handle.stop()
        disk.spin_down()
        self.submit_one(sim, disk)
        assert len(policy.wakeups) == 1
        assert disk._spin_listeners == []

    def test_wakeups_carry_exact_sim_time(self):
        """The listener fires at the spin-up transition itself, not at
        the next check boundary (the old polling quantised to it)."""
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        policy = CountingPolicy()
        run_policy(sim, {"d0": disk}, policy, check_interval=10.0)
        disk.spin_down()
        sim.run(until=3.25)
        self.submit_one(sim, disk)
        assert policy.wakeups == [("d0", 3.25)]

    def test_rearm_after_spin_cycle_resumes_spin_down(self):
        """Stop, let the disk ride through an unmanaged spin cycle (the
        remount analogue at device level), re-arm: spin-downs resume."""
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        h1 = run_policy(sim, {"d0": disk}, FixedTimeoutPolicy(idle_timeout=3.0),
                        check_interval=0.5)
        sim.run(until=1.0)
        h1.stop()
        disk.spin_down()
        self.submit_one(sim, disk)  # unmanaged wake-up while stopped
        assert disk.power_state is not DiskPowerState.SPUN_DOWN
        run_policy(sim, {"d0": disk}, FixedTimeoutPolicy(idle_timeout=3.0),
                   check_interval=0.5)
        sim.run(until=sim.now + 10.0)
        assert disk.power_state is DiskPowerState.SPUN_DOWN

    def test_no_duplicate_ticks_after_restart(self):
        """A stopped-and-restarted policy loop must tick once per
        interval, not once per loop ever started; and a restart must
        not double-register the spin-up listener."""
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        policy = CountingPolicy()  # huge timeout: disk stays idle
        h1 = run_policy(sim, {"d0": disk}, policy, check_interval=1.0)
        sim.run(until=5.25)
        first_window = policy.timeout_queries
        assert first_window == 5
        h1.stop()
        run_policy(sim, {"d0": disk}, policy, check_interval=1.0)
        sim.run(until=10.25)
        assert policy.timeout_queries == 2 * first_window
        assert len(disk._spin_listeners) == 1
        disk.spin_down()
        self.submit_one(sim, disk)
        assert len(policy.wakeups) == 1


def test_policy_objects_are_plain_data():
    """Policies must be constructible without a simulator (ablatable)."""
    assert FixedTimeoutPolicy().idle_timeout == 300.0
    adaptive = AdaptiveTimeoutPolicy()
    assert adaptive.thrash_limit == 3
    assert adaptive.max_timeout == pytest.approx(4 * 3600.0)
