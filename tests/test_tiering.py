"""Tests for repro.tiering: staging, policy, migration, attribution.

Unit tests cover the segmented-LRU promotion filter and the bounded
staging buffer in isolation; integration tests drive a real
:class:`TieredStore` over a full 16-disk deployment — staged writes
ack at hot latency, the orchestrator demotes into idle watts and
pauses under cold-read pressure, promotion moves repeat readers onto
the hot tier, and SLO burn-rate alerts blame the migration tenant
(never user tenants) for background pressure.
"""

import pytest

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.disk.states import DiskPowerState
from repro.gateway import (
    Gateway,
    GatewayConfig,
    ObjectRef,
    ReadObject,
    TenantSpec,
    mount_gateway_spaces,
)
from repro.obs import FlightRecorder, RequestTracer, SloMonitor, SloObjective
from repro.power import FixedTimeoutPolicy, run_policy
from repro.sim import Simulator
from repro.tiering import (
    MigrationOrchestrator,
    SegmentedLruPolicy,
    StagingBuffer,
    StagingFullError,
    TierState,
    TieredObject,
    TieredStore,
    TieringConfig,
    TieringError,
    pinned_disks_for,
)
from repro.workload import KB, MB

from tests.test_gateway import drain

ARCHIVE = TenantSpec(name="archive", slo_seconds=120.0, max_queue_depth=10_000)
MIGRATION = TenantSpec(
    name="migration", weight=0.5, slo_seconds=600.0, max_queue_depth=10_000
)
OBJECT_BYTES = 256 * KB


def staged_obj(uid, size=OBJECT_BYTES, cold_space="/u/d1/s"):
    return TieredObject(
        uid=uid,
        size=size,
        cold_space=cold_space,
        state=TierState.STAGED,
        written_at=0.0,
    )


class TestSegmentedLruPolicy:
    def test_second_access_promotes_once(self):
        policy = SegmentedLruPolicy()
        assert policy.record_access("a", 0.0) is False
        assert policy.record_access("a", 1.0) is True
        # Already protected: refreshes never re-promote.
        assert policy.record_access("a", 2.0) is False
        assert policy.is_protected("a")

    def test_probation_capacity_evicts_lru(self):
        policy = SegmentedLruPolicy(probation_capacity=2)
        policy.record_access("a", 0.0)
        policy.record_access("b", 1.0)
        policy.record_access("c", 2.0)  # evicts "a" from probation
        assert policy.record_access("a", 3.0) is False  # back to square one
        assert policy.record_access("c", 4.0) is True  # survived on probation

    def test_idle_entries_become_demotion_candidates(self):
        policy = SegmentedLruPolicy(idle_seconds=10.0)
        policy.record_access("a", 0.0)
        policy.record_access("a", 1.0)
        assert policy.demotion_candidates(5.0) == []
        assert policy.demotion_candidates(11.0) == ["a"]
        assert not policy.is_protected("a")

    def test_protected_capacity_overflow_demotes_lru_first(self):
        policy = SegmentedLruPolicy(protected_capacity=1, idle_seconds=1e9)
        for uid in ("a", "b"):
            policy.record_access(uid, 0.0)
            policy.record_access(uid, 1.0)
        assert policy.demotion_candidates(2.0) == ["a"]
        assert policy.is_protected("b")

    def test_reset_forgets_everything(self):
        policy = SegmentedLruPolicy()
        policy.record_access("a", 0.0)
        policy.record_access("a", 1.0)
        policy.reset()
        assert policy.sizes() == {"probation": 0, "protected": 0}
        assert policy.record_access("a", 2.0) is False


class TestStagingBuffer:
    def test_bounded_reserve_raises_and_counts(self):
        buffer = StagingBuffer(capacity_bytes=2 * OBJECT_BYTES)
        buffer.reserve(OBJECT_BYTES)
        buffer.reserve(OBJECT_BYTES)
        with pytest.raises(StagingFullError):
            buffer.reserve(1)
        assert buffer.overflows == 1
        buffer.release(OBJECT_BYTES)
        buffer.reserve(OBJECT_BYTES)  # freed bytes admit again

    def test_take_batch_is_fifo_and_byte_bounded(self):
        buffer = StagingBuffer(capacity_bytes=10 * OBJECT_BYTES)
        objs = [staged_obj(f"u{i}") for i in range(5)]
        for obj in objs:
            buffer.enqueue(obj)
        batch = buffer.take_batch("/u/d1/s", 2 * OBJECT_BYTES)
        assert [o.uid for o in batch] == ["u0", "u1"]
        rest = buffer.take_batch("/u/d1/s", 100 * OBJECT_BYTES)
        assert [o.uid for o in rest] == ["u2", "u3", "u4"]

    def test_oversized_single_object_still_demotes(self):
        buffer = StagingBuffer(capacity_bytes=10 * MB)
        buffer.enqueue(staged_obj("big", size=4 * MB))
        batch = buffer.take_batch("/u/d1/s", 1 * MB)
        assert [o.uid for o in batch] == ["big"]

    def test_requeue_preserves_fifo_order(self):
        buffer = StagingBuffer(capacity_bytes=10 * OBJECT_BYTES)
        objs = [staged_obj(f"u{i}") for i in range(4)]
        for obj in objs[2:]:
            buffer.enqueue(obj)
        buffer.requeue(objs[:2])
        batch = buffer.take_batch("/u/d1/s", 100 * OBJECT_BYTES)
        assert [o.uid for o in batch] == ["u0", "u1", "u2", "u3"]

    def test_pending_spaces_orders_by_bytes_then_name(self):
        buffer = StagingBuffer(capacity_bytes=100 * OBJECT_BYTES)
        buffer.enqueue(staged_obj("a", cold_space="/u/d2/s"))
        buffer.enqueue(staged_obj("b", cold_space="/u/d1/s"))
        buffer.enqueue(staged_obj("c", cold_space="/u/d1/s"))
        assert buffer.pending_spaces() == ["/u/d1/s", "/u/d2/s"]


class TestDeferredPolicyLoop:
    def build_disk(self):
        from repro.disk.device import SimulatedDisk

        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        sim.run(until=1.0)
        return sim, disk

    def test_run_policy_handle_stops_the_loop(self):
        sim, disk = self.build_disk()
        handle = run_policy(
            sim, {"d0": disk}, FixedTimeoutPolicy(idle_timeout=5.0), check_interval=1.0
        )
        handle.stop()
        sim.run(until=60.0)
        assert disk.power_state is DiskPowerState.IDLE  # never spun down

    def test_run_policy_still_spins_down_without_processes(self):
        sim, disk = self.build_disk()
        run_policy(
            sim, {"d0": disk}, FixedTimeoutPolicy(idle_timeout=5.0), check_interval=1.0
        )
        sim.run(until=60.0)
        assert disk.power_state is DiskPowerState.SPUN_DOWN


def build_tiered(
    seed=7,
    hot_spaces=2,
    power_budget_watts=40.0,
    tracer=None,
    start_orchestrator=True,
    **tiering_kwargs,
):
    """A settled 16-disk deployment: pinned hot tier + tiered store."""
    dep = build_deployment(config=DeploymentConfig(seed=seed), tracer=tracer)
    dep.settle(15.0)
    objects, spaces = mount_gateway_spaces(dep, 64 * MB)
    for disk_id in sorted(dep.disks):
        dep.disks[disk_id].spin_down()
    pinned = pinned_disks_for(objects, hot_spaces)
    gateway = Gateway(
        dep.sim,
        (ARCHIVE, MIGRATION),
        GatewayConfig(
            power_budget_watts=power_budget_watts,
            scheduler="batch",
            pinned_disks=pinned,
        ),
    )
    gateway.attach(objects, spaces, dep.disks, host_of=dep.host_of_disk)
    gateway.start()
    store = TieredStore(
        gateway,
        TieringConfig(
            tenant="archive",
            migration_tenant="migration",
            hot_spaces=hot_spaces,
            **tiering_kwargs,
        ),
    )
    store.start()
    orchestrator = MigrationOrchestrator(store)
    if start_orchestrator:
        orchestrator.start()
    # Let the hot tier finish spinning up so staged acks are hot-speed.
    dep.sim.run(until=dep.sim.now + 10.0)
    return dep, gateway, store, orchestrator


def drain_tiering(dep, gateway, store, cap=600.0):
    """Drain foreground *and* background: queues, staging, demotions."""
    deadline = dep.sim.now + cap
    dep.sim.run(until=dep.sim.now + 1.0)
    while dep.sim.now < deadline and (
        not gateway.drained()
        or store.pending_demotion_bytes() > 0
        or store.inflight_demotions > 0
    ):
        dep.sim.run(until=dep.sim.now + 5.0)
    assert gateway.drained(), "gateway failed to drain"


class TestTieredStoreStaging:
    def test_staged_writes_ack_at_hot_latency(self):
        dep, gateway, store, _ = build_tiered(start_orchestrator=False)
        objs = []

        def ingest():
            for i in range(20):
                objs.append(store.write(f"uid-{i}", OBJECT_BYTES))

        dep.sim.call_in(0.0, ingest)
        drain(dep, gateway)
        assert store.stats.staged == 20
        assert all(o.state is TierState.STAGED for o in objs)
        # Hot disks were already spinning: no spin-up in any ack path.
        acks = [o.acked_at - o.written_at for o in objs]
        assert max(acks) < 2.0, f"staged ack saw a spin-up: {max(acks)}"
        assert all(store.residency(o.uid) == "hot" for o in objs)
        assert all(store.durable_tiers(o.uid) == ["hot"] for o in objs)

    def test_pinned_hot_disks_never_spin_down(self):
        dep, gateway, store, _ = build_tiered(start_orchestrator=False)
        # Idle far past the spin-down timeout.
        dep.sim.run(until=dep.sim.now + 120.0)
        for disk_id in gateway.config.pinned_disks:
            assert dep.disks[disk_id].power_state is DiskPowerState.IDLE
        # Unpinned disks did spin down.
        unpinned = sorted(set(dep.disks) - set(gateway.config.pinned_disks))
        assert all(
            dep.disks[d].power_state is DiskPowerState.SPUN_DOWN for d in unpinned
        )

    def test_staging_bound_backpressures(self):
        dep, gateway, store, _ = build_tiered(
            start_orchestrator=False,
            staging_capacity_bytes=3 * OBJECT_BYTES,
        )

        def ingest():
            for i in range(3):
                store.write(f"uid-{i}", OBJECT_BYTES)
            with pytest.raises(StagingFullError):
                store.write("uid-overflow", OBJECT_BYTES)

        dep.sim.call_in(0.0, ingest)
        drain(dep, gateway)
        assert store.staging.overflows == 1
        assert store.stats.written == 3

    def test_duplicate_uid_rejected(self):
        dep, gateway, store, _ = build_tiered(start_orchestrator=False)

        def ingest():
            store.write("uid-0", OBJECT_BYTES)
            with pytest.raises(TieringError):
                store.write("uid-0", OBJECT_BYTES)

        dep.sim.call_in(0.0, ingest)
        drain(dep, gateway)


class TestMigration:
    def test_background_demotion_moves_everything_cold(self):
        dep, gateway, store, orchestrator = build_tiered()
        objs = []

        def ingest():
            for i in range(30):
                objs.append(store.write(f"uid-{i}", OBJECT_BYTES))

        dep.sim.call_in(0.0, ingest)
        drain_tiering(dep, gateway, store)
        assert store.stats.demoted == 30
        assert store.staging.staged_bytes == 0
        assert all(o.state is TierState.COLD for o in objs)
        # Exactly one durable tier per object after demotion commits.
        assert all(store.durable_tiers(o.uid) == ["cold"] for o in objs)
        # Each batch packed one sequential run: far fewer batches than
        # objects, all under the migration tenant.
        assert 0 < store.stats.demotion_batches < 30
        migration = gateway.stats.per_tenant["migration"]
        assert migration.completed == store.stats.demotion_batches
        assert gateway.stats.per_tenant["archive"].completed == 30

    def test_demotion_batches_are_sequential_runs(self):
        dep, gateway, store, _ = build_tiered()

        def ingest():
            for i in range(30):
                store.write(f"uid-{i}", OBJECT_BYTES)

        dep.sim.call_in(0.0, ingest)
        drain_tiering(dep, gateway, store)
        by_space = {}
        for space_id in store.cold_spaces():
            media = store._cold_media.get(space_id, {})
            refs = sorted(
                (o.cold_ref.offset, o.cold_ref.size) for o in media.values()
            )
            by_space[space_id] = refs
        packed = 0
        for refs in by_space.values():
            for (off_a, size_a), (off_b, _) in zip(refs, refs[1:]):
                if off_a + size_a == off_b:
                    packed += 1
        assert packed > 0, "expected contiguously packed demotion runs"

    def test_migration_pauses_under_cold_read_pressure(self):
        dep, gateway, store, orchestrator = build_tiered(
            pressure_queue_depth=0, demotion_check_interval=1.0
        )
        cold_space = store.cold_spaces()[0]

        def ingest():
            for i in range(10):
                store.write(f"uid-{i}", OBJECT_BYTES)
            # Deep foreground backlog on one cold disk.
            for i in range(12):
                gateway.submit(
                    ReadObject(
                        tenant="archive",
                        ref=ObjectRef(cold_space, i * MB, 1 * MB),
                    )
                )

        dep.sim.call_in(0.0, ingest)
        dep.sim.run(until=dep.sim.now + 6.0)
        assert orchestrator.stats.pressure_pauses > 0
        drain_tiering(dep, gateway, store)
        # Once pressure clears, demotion finishes normally.
        assert store.stats.demoted == 10

    def test_demotion_waits_for_idle_watts(self):
        # 20 W budget, 16 W of it pinned under the two hot disks: hot
        # writes (marginal cost 0) dispatch, but the 8 W a cold spin-up
        # needs never fits, so the accountant withholds every batch.
        dep, gateway, store, orchestrator = build_tiered(
            power_budget_watts=20.0,
            demotion_check_interval=1.0,
            demotion_max_age_seconds=0.0,
        )

        def ingest():
            for i in range(5):
                store.write(f"uid-{i}", OBJECT_BYTES)

        dep.sim.call_in(0.0, ingest)
        dep.sim.run(until=dep.sim.now + 30.0)
        assert orchestrator.stats.power_skips > 0
        assert store.stats.demotion_batches == 0
        assert store.pending_demotion_bytes() > 0


class TestPromotion:
    def test_repeat_cold_reads_promote_to_hot(self):
        dep, gateway, store, _ = build_tiered()
        uid = "uid-0"

        def ingest():
            for i in range(8):
                store.write(f"uid-{i}", OBJECT_BYTES)

        dep.sim.call_in(0.0, ingest)
        drain_tiering(dep, gateway, store)
        assert store.residency(uid) == "cold"

        def read_twice():
            store.read(uid)
            store.read(uid)

        dep.sim.call_in(0.0, read_twice)
        drain_tiering(dep, gateway, store)
        assert store.stats.promotions == 1
        assert store.residency(uid) == "hot"
        assert sorted(store.durable_tiers(uid)) == ["cold", "hot"]

        reads = []
        dep.sim.call_in(0.0, lambda: reads.append(store.read(uid)))
        drain(dep, gateway)
        assert store.stats.hot_reads >= 1
        assert reads[0].failure is None

    def test_idle_promoted_objects_are_evicted_for_free(self):
        dep, gateway, store, orchestrator = build_tiered(
            hot_idle_seconds=20.0, demotion_check_interval=1.0
        )
        uid = "uid-0"

        def ingest():
            for i in range(4):
                store.write(f"uid-{i}", OBJECT_BYTES)

        dep.sim.call_in(0.0, ingest)
        drain_tiering(dep, gateway, store)
        dep.sim.call_in(0.0, lambda: (store.read(uid), store.read(uid)))
        drain_tiering(dep, gateway, store)
        assert store.residency(uid) == "hot"
        passes_before = gateway.stats.disk_passes
        dep.sim.run(until=dep.sim.now + 60.0)
        assert store.stats.evictions == 1
        assert store.residency(uid) == "cold"
        assert store.durable_tiers(uid) == ["cold"]
        # Eviction moved no data: not a single extra disk pass.
        assert gateway.stats.disk_passes == passes_before


class TestMigrationAttribution:
    def test_slo_alerts_blame_migration_not_users(self):
        # A migration tenant with a deliberately impossible deadline:
        # every demotion batch misses it, burning the migration error
        # budget while the archive tenant stays green.
        tracer = RequestTracer()
        dep = build_deployment(config=DeploymentConfig(seed=7), tracer=tracer)
        dep.settle(15.0)
        objects, spaces = mount_gateway_spaces(dep, 64 * MB)
        for disk_id in sorted(dep.disks):
            dep.disks[disk_id].spin_down()
        migration = TenantSpec(
            name="migration", weight=0.5, slo_seconds=0.001, max_queue_depth=10_000
        )
        pinned = pinned_disks_for(objects, 2)
        gateway = Gateway(
            dep.sim,
            (ARCHIVE, migration),
            GatewayConfig(
                power_budget_watts=40.0, scheduler="batch", pinned_disks=pinned
            ),
        )
        gateway.attach(objects, spaces, dep.disks, host_of=dep.host_of_disk)
        gateway.start()
        recorder = FlightRecorder(tracer)
        monitor = SloMonitor(
            tracer,
            [
                SloObjective(tenant="archive", min_events=2),
                SloObjective(tenant="migration", min_events=2),
            ],
        )
        store = TieredStore(
            gateway,
            TieringConfig(
                tenant="archive",
                migration_tenant="migration",
                demotion_check_interval=1.0,
            ),
        )
        store.start()
        MigrationOrchestrator(store).start()
        dep.sim.run(until=dep.sim.now + 10.0)

        def ingest():
            for i in range(30):
                store.write(f"uid-{i}", OBJECT_BYTES)

        dep.sim.call_in(0.0, ingest)
        drain_tiering(dep, gateway, store)
        fired = {a.tenant for a in monitor.alerts if a.kind == "fire"}
        assert fired == {"migration"}
        assert not monitor.firing("archive")
        # The alert snapshot reached the flight recorder, and the
        # migration traffic in it is labelled as background work.
        assert recorder.triggers_seen > 0
        dump = recorder.dumps[0]
        assert dump["trigger"]["attrs"]["tenant"] == "migration"
        background = [
            t
            for t in dump["traces"]
            if t.get("attrs", {}).get("background")
        ]
        assert background, "flight dump should carry background-tagged traces"
        monitor.detach()
        recorder.detach()


class TestGatewayPowerHelpers:
    def test_idle_watts_reports_headroom(self):
        dep, gateway, store, _ = build_tiered(start_orchestrator=False)
        accountant = gateway.power_accountant
        # Two hot disks spinning inside a 40 W budget -> 24 W headroom.
        assert accountant.idle_watts() == pytest.approx(
            40.0 - 2 * accountant.watts_per_disk
        )

    def test_pinned_disk_must_be_attached(self):
        dep = build_deployment(config=DeploymentConfig(seed=7))
        dep.settle(15.0)
        objects, spaces = mount_gateway_spaces(dep, 64 * MB)
        gateway = Gateway(
            dep.sim,
            (ARCHIVE, MIGRATION),
            GatewayConfig(pinned_disks=("nope",)),
        )
        from repro.gateway import GatewayError

        with pytest.raises(GatewayError):
            gateway.attach(objects, spaces, dep.disks, host_of=dep.host_of_disk)

    def test_store_requires_pinned_hot_disks(self):
        dep = build_deployment(config=DeploymentConfig(seed=7))
        dep.settle(15.0)
        objects, spaces = mount_gateway_spaces(dep, 64 * MB)
        gateway = Gateway(dep.sim, (ARCHIVE, MIGRATION), GatewayConfig())
        gateway.attach(objects, spaces, dep.disks, host_of=dep.host_of_disk)
        with pytest.raises(TieringError):
            TieredStore(gateway, TieringConfig(tenant="archive"))
