"""Network partitions against the coordination service and deployment."""

import pytest

from repro.coord import CoordSession, Role, build_cluster
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def make_cluster(size=3, seed=2):
    sim = Simulator()
    net = Network(sim, jitter=0.0)
    replicas = build_cluster(sim, net, size=size, rng=RngRegistry(seed))
    sim.run(until=5.0)
    return sim, net, replicas


def leader_of(replicas):
    leaders = [r for r in replicas if r.role is Role.LEADER and not r.crashed]
    return leaders[-1] if leaders else None


class TestCoordPartitions:
    def test_isolated_leader_is_replaced(self):
        sim, net, replicas = make_cluster()
        old = leader_of(replicas)
        for other in replicas:
            if other is not old:
                net.partition(old.address, other.address)
                net.partition(f"{old.address}.peerclient", other.address)
                net.partition(old.address, f"{other.address}.peerclient")
        sim.run(until=sim.now + 10.0)
        majority_leaders = [
            r for r in replicas if r.role is Role.LEADER and r is not old
        ]
        assert len(majority_leaders) == 1
        assert majority_leaders[0].current_epoch > old.current_epoch

    def test_old_leader_steps_down_after_heal(self):
        sim, net, replicas = make_cluster()
        old = leader_of(replicas)
        for other in replicas:
            if other is not old:
                net.partition(old.address, other.address)
                net.partition(f"{old.address}.peerclient", other.address)
                net.partition(old.address, f"{other.address}.peerclient")
        sim.run(until=sim.now + 10.0)
        net.heal_all()
        sim.run(until=sim.now + 10.0)
        leaders = [r for r in replicas if r.role is Role.LEADER]
        assert len(leaders) == 1
        assert leaders[0] is not old

    def test_writes_during_partition_survive_heal(self):
        sim, net, replicas = make_cluster()
        old = leader_of(replicas)
        for other in replicas:
            if other is not old:
                net.partition(old.address, other.address)
                net.partition(f"{old.address}.peerclient", other.address)
                net.partition(old.address, f"{other.address}.peerclient")
        sim.run(until=sim.now + 10.0)
        session = CoordSession(sim, net, "pclient", [r.address for r in replicas])

        def scenario():
            yield from session.start()
            yield from session.create("/partition-write", data=1)

        sim.run_until_event(sim.process(scenario()))
        net.heal_all()
        sim.run(until=sim.now + 10.0)
        # The write committed on the majority side and survives healing
        # on whoever leads now.
        current = leader_of(replicas)
        assert current.tree.exists("/partition-write")

    def test_minority_partition_cannot_commit(self):
        sim, net, replicas = make_cluster()
        old = leader_of(replicas)
        for other in replicas:
            if other is not old:
                net.partition(old.address, other.address)
                net.partition(f"{old.address}.peerclient", other.address)
                net.partition(old.address, f"{other.address}.peerclient")
        # A client that can only reach the isolated old leader.
        session = CoordSession(sim, net, "mclient", [old.address])
        for other in replicas:
            if other is not old:
                net.partition("mclient", other.address)

        def scenario():
            yield from session.start()

        from repro.net import RpcTimeout, RemoteError

        with pytest.raises((RpcTimeout, RemoteError)):
            sim.run_until_event(sim.process(scenario()))
        # The isolated leader never applied the session creation.
        assert "session:mclient" not in old._session_timeouts or not old.tree.exists(
            "/partition-x"
        )
