"""Property tests: the calendar queue is order-equivalent to the heap.

Two layers of evidence, both across many seeds:

* **Queue level** — random push/pop workloads (clustered timestamps,
  priority ties, bursts, pathological widths) fed to a
  :class:`~repro.sim.CalendarQueue` and the :class:`~repro.sim
  .HeapScheduler` oracle must pop identical ``(time, priority, seq)``
  sequences.
* **Kernel level** — full simulations (timer storms, same-timestamp
  priority ties, process interrupts/cancellations, event failure) run
  once per scheduler must produce byte-identical
  :class:`~repro.sim.EventDigest` replay fingerprints and identical
  observable traces.
"""

import pytest

from repro.sim import (
    CalendarQueue,
    EventDigest,
    HeapScheduler,
    Interrupt,
    RngRegistry,
    Simulator,
)

SEEDS = list(range(30))


# -- queue-level equivalence ----------------------------------------------


def _random_workload(seed, operations=2000):
    """Interleaved pushes and pops with clustered times and tied triples."""
    rand = RngRegistry(seed).stream("calendar.property")
    heap, cal = HeapScheduler(), CalendarQueue()
    seq = 0
    popped = []
    now = 0.0
    for _ in range(operations):
        action = rand.random()
        if action < 0.6 or not len(heap):
            # Mix near-future clusters, exact ties and far-flung times.
            shape = rand.random()
            if shape < 0.5:
                time = now + rand.random() * 2.0
            elif shape < 0.8:
                time = now + float(rand.randrange(4))  # deliberate ties
            else:
                time = now + rand.random() * 1000.0
            priority = rand.randrange(3)
            burst = 1 + rand.randrange(3)
            for _ in range(burst):
                item = (time, priority, seq, int)
                heap.push(item)
                cal.push(item)
                seq += 1
        else:
            a, b = heap.pop(), cal.pop()
            assert a == b, f"seed {seed}: heap {a[:3]} != calendar {b[:3]}"
            now = a[0]
            popped.append(a[:3])
    while len(heap):
        a, b = heap.pop(), cal.pop()
        assert a == b
        popped.append(a[:3])
    assert len(cal) == 0
    with pytest.raises(IndexError):
        cal.pop()
    return popped


@pytest.mark.parametrize("seed", SEEDS)
def test_random_workloads_pop_identically(seed):
    popped = _random_workload(seed)
    # Time never runs backwards.  (The full triple sequence need not be
    # globally sorted: a same-time, smaller-priority item pushed *after*
    # a pop at that time legitimately pops later.)
    times = [time for time, _, _ in popped]
    assert times == sorted(times)
    assert len(popped) > 500


@pytest.mark.parametrize("width", [1e-9, 1e-3, 1.0, 1e6])
def test_pathological_initial_widths_stay_equivalent(width):
    rand = RngRegistry(99).stream("calendar.width")
    heap, cal = HeapScheduler(), CalendarQueue(initial_width=width)
    for seq in range(3000):
        item = (rand.random() * 100.0, rand.randrange(3), seq, int)
        heap.push(item)
        cal.push(item)
    out = []
    while len(heap):
        a, b = heap.pop(), cal.pop()
        assert a == b
        out.append(a)
    assert out == sorted(out)


def test_peek_time_matches_heap_and_does_not_reorder():
    rand = RngRegistry(5).stream("calendar.peek")
    heap, cal = HeapScheduler(), CalendarQueue()
    for seq in range(500):
        item = (rand.random() * 10.0, rand.randrange(3), seq, int)
        heap.push(item)
        cal.push(item)
    while len(heap):
        assert cal.peek_time() == heap.peek_time()
        assert heap.pop() == cal.pop()
    assert cal.peek_time() == float("inf")


def test_in_window_push_lands_in_order():
    """A push below the open horizon must insort into the live window."""
    cal = CalendarQueue(initial_width=10.0)
    for seq, time in enumerate([0.0, 5.0, 9.0]):
        cal.push((time, 1, seq, int))
    assert cal.pop()[0] == 0.0  # opens a window covering [0, 10)
    cal.push((1.0, 1, 99, int))  # lands inside the open window
    cal.push((9.5, 1, 100, int))
    assert [cal.pop()[0] for _ in range(4)] == [1.0, 5.0, 9.0, 9.5]


def test_constructor_validation():
    with pytest.raises(ValueError):
        CalendarQueue(initial_width=0.0)
    with pytest.raises(ValueError):
        CalendarQueue(widen_below=10, halve_above=10)


# -- kernel-level equivalence ---------------------------------------------


def _timer_storm(sim, rand, events):
    """Self-rescheduling defer timers with ties and mixed priorities."""
    fired = []
    remaining = [events]

    def make_timer(name):
        def tick():
            fired.append((name, sim.now))
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.defer(rand.random() * 2.0, tick, rand.randrange(3))

        return tick

    for i in range(16):
        sim.defer(rand.random(), make_timer(i), rand.randrange(3))
    return fired


def _interrupt_scenario(sim, rand, log):
    """Processes that wait, get interrupted, and cancel pending work."""

    def sleeper(name):
        try:
            yield sim.timeout(1000.0)
            log.append((name, "slept", sim.now))
        except Interrupt as interrupt:
            log.append((name, f"interrupted:{interrupt.cause}", sim.now))
            yield sim.timeout(rand.random())
            log.append((name, "recovered", sim.now))

    sleepers = [sim.process(sleeper(f"p{i}")) for i in range(8)]

    def killer():
        for i, proc in enumerate(sleepers):
            yield sim.timeout(rand.random() * 3.0)
            if i % 3 != 2:  # leave some sleeping: they cancel via drain
                proc.interrupt(cause=i)
                log.append(("killer", f"hit:{i}", sim.now))

    sim.process(killer())

    def failer():
        ev = sim.event()
        sim.defer(2.0, lambda: ev.fail(RuntimeError("boom")))
        try:
            yield ev
        except RuntimeError:
            log.append(("failer", "caught", sim.now))

    sim.process(failer())


def _run_scenario(scheduler, seed):
    """One mixed workload under ``scheduler``: digest + observable log."""
    sim = Simulator(scheduler=scheduler)
    digest = EventDigest().attach(sim)
    rand = RngRegistry(seed).stream("calendar.kernel")
    fired = _timer_storm(sim, rand, events=400)
    log = []
    _interrupt_scenario(sim, rand, log)
    sim.run(until=500.0)
    return digest.hexdigest(), digest.events, fired, log


@pytest.mark.parametrize("seed", SEEDS)
def test_digest_identical_across_schedulers(seed):
    heap = _run_scenario("heap", seed)
    calendar = _run_scenario("calendar", seed)
    assert heap == calendar
    assert heap[1] > 400  # the scenario actually exercised the kernel


def test_same_timestamp_priority_ties_pop_in_priority_then_seq_order():
    for scheduler in ("heap", "calendar"):
        sim = Simulator(scheduler=scheduler)
        order = []
        # Reverse-priority insertion at one timestamp: pops must sort by
        # (priority, seq), not insertion order.
        for name, priority in [("low", 2), ("urgent", 0), ("normal", 1),
                               ("urgent2", 0), ("low2", 2)]:
            sim.defer(1.0, lambda n=name: order.append(n), priority)
        sim.run()
        assert order == ["urgent", "urgent2", "normal", "low", "low2"], scheduler


def test_cancelled_timeouts_keep_schedulers_aligned():
    """Interrupt-heavy runs (abandoned timeouts stay queued) still match."""
    results = []
    for scheduler in ("heap", "calendar"):
        sim = Simulator(scheduler=scheduler)
        digest = EventDigest().attach(sim)
        log = []

        def waiter(name):
            try:
                yield sim.timeout(50.0)
                log.append((name, "done"))
            except Interrupt:
                log.append((name, "cancelled"))

        procs = [sim.process(waiter(f"w{i}")) for i in range(6)]

        def canceller():
            yield sim.timeout(10.0)
            for proc in procs[::2]:
                proc.interrupt()

        sim.process(canceller())
        sim.run()
        results.append((digest.hexdigest(), log))
    assert results[0] == results[1]
    assert ("w0", "cancelled") in results[0][1]
    assert ("w1", "done") in results[0][1]
