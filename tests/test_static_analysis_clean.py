"""CI gate: the tree itself must pass its own lint (DET + UNIT + PROC).

This keeps ``python -m repro lint src/repro`` at zero unsuppressed
findings as part of the default pytest run, and checks the standalone
``scripts/run_static_analysis.py`` entrypoint's exit-status contract:
the human-readable report, the machine-readable ``lint-summary`` line,
and the ``LINT_BASELINE.json`` suppression gate.  The mypy pass runs
only when mypy is installed (the container may not ship it); the
script skips it gracefully either way.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Linter

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "run_static_analysis.py"
SRC_REPRO = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).parent / "analysis_fixtures"


def _load_script_module():
    spec = importlib.util.spec_from_file_location("run_static_analysis", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_tree_has_zero_unsuppressed_findings():
    report = Linter().lint_paths([str(SRC_REPRO)])
    assert report.ok, "\n" + report.render(audit=True)


def test_script_exits_zero_on_clean_tree():
    completed = subprocess.run(
        [sys.executable, str(SCRIPT)], capture_output=True, text=True
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr


def test_script_exits_nonzero_on_findings():
    completed = subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--no-mypy",
            str(FIXTURES / "det001_bad.py"),
        ],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 1
    assert "DET001" in completed.stdout


def test_script_audit_lists_suppressions():
    completed = subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--no-mypy",
            "--audit",
            str(FIXTURES / "suppressed.py"),
        ],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0
    assert "Suppressions in effect" in completed.stdout


def _summary_line(stdout):
    for line in stdout.splitlines():
        if line.startswith("lint-summary: "):
            return json.loads(line[len("lint-summary: ") :])
    raise AssertionError(f"no lint-summary line in:\n{stdout}")


def test_script_emits_machine_readable_summary():
    completed = subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--no-mypy",
            str(FIXTURES / "det001_bad.py"),
            str(FIXTURES / "proc002_bad.py"),
        ],
        capture_output=True,
        text=True,
    )
    summary = _summary_line(completed.stdout)
    assert summary["files_checked"] == 2
    assert summary["by_rule"]["DET001"] >= 1
    assert summary["by_rule"]["PROC002"] >= 1


def test_lint_baseline_is_committed_and_tree_is_within_it():
    baseline_path = REPO_ROOT / "LINT_BASELINE.json"
    assert baseline_path.exists(), "LINT_BASELINE.json must be committed"
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    allowed = baseline["suppressed_by_rule"]
    current = Linter().lint_paths([str(SRC_REPRO)]).suppressed_by_rule()
    for rule_id, count in current.items():
        assert count <= int(allowed.get(rule_id, 0)), (
            f"{rule_id}: {count} suppression(s) exceeds baseline"
        )


def test_baseline_gate_fails_on_new_suppressions(tmp_path):
    module = _load_script_module()
    report = Linter().lint_paths([str(FIXTURES / "suppressed.py")])
    assert report.suppressed_by_rule()  # the fixture has waivers
    empty = tmp_path / "baseline.json"
    empty.write_text(json.dumps({"suppressed_by_rule": {}}), encoding="utf-8")
    assert module.check_lint_baseline(report, update=False, baseline_path=empty) == 1


def test_baseline_gate_passes_at_or_below_baseline(tmp_path):
    module = _load_script_module()
    report = Linter().lint_paths([str(FIXTURES / "suppressed.py")])
    path = tmp_path / "baseline.json"
    assert module.check_lint_baseline(report, update=True, baseline_path=path) == 0
    written = json.loads(path.read_text(encoding="utf-8"))
    assert written["suppressed_by_rule"] == report.suppressed_by_rule()
    assert module.check_lint_baseline(report, update=False, baseline_path=path) == 0


def test_baseline_gate_skips_when_file_missing(tmp_path):
    module = _load_script_module()
    report = Linter().lint_paths([str(FIXTURES / "suppressed.py")])
    missing = tmp_path / "nope.json"
    assert module.check_lint_baseline(report, update=False, baseline_path=missing) == 0


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_mypy_strict_packages_clean():
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "pyproject.toml"),
            str(SRC_REPRO / "sim"),
            str(SRC_REPRO / "analysis"),
            str(SRC_REPRO / "obs"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
