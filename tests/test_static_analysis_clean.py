"""CI gate: the tree itself must pass its own determinism lint.

This keeps ``python -m repro lint src/repro`` at zero unsuppressed
findings as part of the default pytest run, and checks the standalone
``scripts/run_static_analysis.py`` entrypoint's exit-status contract.
The mypy pass runs only when mypy is installed (the container may not
ship it); the script skips it gracefully either way.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Linter

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "run_static_analysis.py"
SRC_REPRO = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).parent / "analysis_fixtures"


def test_tree_has_zero_unsuppressed_findings():
    report = Linter().lint_paths([str(SRC_REPRO)])
    assert report.ok, "\n" + report.render(audit=True)


def test_script_exits_zero_on_clean_tree():
    completed = subprocess.run(
        [sys.executable, str(SCRIPT)], capture_output=True, text=True
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr


def test_script_exits_nonzero_on_findings():
    completed = subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--no-mypy",
            str(FIXTURES / "det001_bad.py"),
        ],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 1
    assert "DET001" in completed.stdout


def test_script_audit_lists_suppressions():
    completed = subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--no-mypy",
            "--audit",
            str(FIXTURES / "suppressed.py"),
        ],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0
    assert "Suppressions in effect" in completed.stdout


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_mypy_strict_packages_clean():
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "pyproject.toml"),
            str(SRC_REPRO / "sim"),
            str(SRC_REPRO / "analysis"),
            str(SRC_REPRO / "obs"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
