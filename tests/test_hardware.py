"""Tests for the control plane hardware: microcontrollers and relays."""

import pytest

from repro.disk import DiskPowerState, SimulatedDisk
from repro.fabric import FabricError, prototype_fabric
from repro.hardware import ControlPlane, Microcontroller, RelayBank, rolling_spin_up
from repro.sim import Simulator
from repro.usbsim import UsbBus


class TestMicrocontroller:
    def test_unpowered_outputs_zero(self):
        mc = Microcontroller("mc", ["s0", "s1"])
        assert mc.effective_outputs() == {"s0": 0, "s1": 0}

    def test_set_output_requires_power(self):
        mc = Microcontroller("mc", ["s0"])
        with pytest.raises(FabricError):
            mc.set_output("s0", 1)

    def test_unknown_line_rejected(self):
        mc = Microcontroller("mc", ["s0"])
        mc.powered = True
        with pytest.raises(FabricError):
            mc.set_output("s9", 1)

    def test_invalid_signal_rejected(self):
        mc = Microcontroller("mc", ["s0"])
        mc.powered = True
        with pytest.raises(FabricError):
            mc.set_output("s0", 2)

    def test_failed_board_floats_low(self):
        mc = Microcontroller("mc", ["s0"])
        mc.powered = True
        mc.set_output("s0", 1)
        mc.failed = True
        assert mc.effective_outputs() == {"s0": 0}


class TestControlPlane:
    def test_initial_signals_match_fabric(self):
        fabric = prototype_fabric()
        plane = ControlPlane(fabric)
        for switch in fabric.switches:
            assert plane.signal(switch.node_id) == switch.state

    def test_set_switch_through_primary(self):
        fabric = prototype_fabric()
        plane = ControlPlane(fabric)
        plane.set_switch("disksw0", 1)
        assert fabric.node("disksw0").state == 1
        plane.set_switch("disksw0", 0)
        assert fabric.node("disksw0").state == 0

    def test_xor_failover_preserves_states(self):
        """§III-B: powering the backup must not glitch any switch."""
        fabric = prototype_fabric()
        plane = ControlPlane(fabric)
        plane.set_switch("disksw0", 1)
        plane.set_switch("leafsw3", 1)
        before = {s.node_id: s.state for s in fabric.switches}
        plane.failover_to_backup()
        after = {s.node_id: s.state for s in fabric.switches}
        assert before == after

    def test_backup_can_drive_after_failover(self):
        fabric = prototype_fabric()
        plane = ControlPlane(fabric)
        plane.set_switch("disksw0", 1)
        plane.failover_to_backup()
        plane.set_switch("disksw0", 0)
        assert fabric.node("disksw0").state == 0
        plane.set_switch("disksw1", 1)
        assert fabric.node("disksw1").state == 1

    def test_no_operational_board_raises(self):
        fabric = prototype_fabric()
        plane = ControlPlane(fabric)
        plane.primary.failed = True
        plane.backup.failed = True
        with pytest.raises(FabricError):
            plane.set_switch("disksw0", 1)

    def test_active_selection(self):
        fabric = prototype_fabric()
        plane = ControlPlane(fabric)
        assert plane.active is plane.primary
        plane.failover_to_backup()
        assert plane.active is plane.backup


def make_relays():
    sim = Simulator()
    fabric = prototype_fabric()
    disks = {d.node_id: SimulatedDisk(sim, d.node_id) for d in fabric.disks}
    bus = UsbBus(sim, fabric)
    bus.sync()
    sim.run(until=10.0)
    return sim, disks, bus, RelayBank(sim, disks, bus=bus)


class TestRelays:
    def test_open_relay_powers_off_and_detaches(self):
        sim, disks, bus, relays = make_relays()
        host = None
        for h in ("host0", "host1", "host2", "host3"):
            if "disk0" in bus.os_view(h):
                host = h
        assert host is not None
        relays.open_relay("disk0")
        assert disks["disk0"].power_state is DiskPowerState.POWERED_OFF
        sim.run(until=sim.now + 5.0)
        assert "disk0" not in bus.os_view(host)

    def test_close_relay_restores(self):
        sim, disks, bus, relays = make_relays()
        relays.open_relay("disk0")
        sim.run(until=sim.now + 5.0)
        ready = relays.close_relay("disk0")
        sim.run_until_event(ready)
        assert disks["disk0"].states.is_spinning
        sim.run(until=sim.now + 10.0)
        assert any("disk0" in bus.os_view(f"host{i}") for i in range(4))

    def test_double_open_is_idempotent(self):
        sim, disks, bus, relays = make_relays()
        relays.open_relay("disk0")
        relays.open_relay("disk0")
        assert not relays.is_powered("disk0")

    def test_close_on_powered_is_immediate(self):
        sim, disks, bus, relays = make_relays()
        ready = relays.close_relay("disk0")
        assert ready.triggered

    def test_unknown_disk_rejected(self):
        sim, disks, bus, relays = make_relays()
        with pytest.raises(KeyError):
            relays.open_relay("nope")

    def test_rolling_spin_up_staggers(self):
        sim, disks, bus, relays = make_relays()
        for disk_id in disks:
            relays.open_relay(disk_id)
        sim.run(until=sim.now + 5.0)
        start = sim.now
        proc = sim.process(
            rolling_spin_up(sim, relays, stagger=2.0, group_size=4)
        )
        finished = sim.run_until_event(proc)
        # 16 disks in 4 groups: 3 staggers of 2s, then the last group's
        # 8s spin-up completes: total >= 6 + 8.
        assert finished - start >= 14.0
        assert all(d.states.is_spinning for d in disks.values())

    def test_rolling_spin_up_subset(self):
        sim, disks, bus, relays = make_relays()
        relays.open_relay("disk0")
        relays.open_relay("disk1")
        sim.run(until=sim.now + 5.0)
        proc = sim.process(
            rolling_spin_up(sim, relays, ["disk0", "disk1"], group_size=2)
        )
        sim.run_until_event(proc)
        assert disks["disk0"].states.is_spinning
        assert disks["disk1"].states.is_spinning
