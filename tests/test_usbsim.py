"""Tests for the simulated USB stack: trees, hot-plug, enumeration."""

import pytest

from repro.fabric import execute_plan, plan_switches, prototype_fabric
from repro.sim import Simulator
from repro.usbsim import (
    UsbBus,
    UsbQuirks,
    UsbTimingParams,
    render_tree,
    usb_tree_view,
    visible_disks,
)


class Recorder:
    """Listener that records (time, kind, disk) tuples."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []

    def on_attach(self, disk_id):
        self.log.append((self.sim.now, "attach", disk_id))

    def on_detach(self, disk_id):
        self.log.append((self.sim.now, "detach", disk_id))


class TestTreeView:
    def test_initial_visibility(self):
        f = prototype_fabric()
        for h in range(4):
            assert sorted(visible_disks(f, f"host{h}")) == sorted(
                d for d, host in f.attachment_map().items() if host == f"host{h}"
            )

    def test_tree_structure(self):
        f = prototype_fabric()
        trees = usb_tree_view(f, "host0")
        assert len(trees) == 1  # one root port per host
        root = trees[0]
        # Root hub -> two active leaf hubs -> two disks each.
        assert len(root.children) == 1
        root_hub = root.children[0]
        assert root_hub.kind == "hub"
        leaf_hubs = [c for c in root_hub.children if c.kind == "hub"]
        assert len(leaf_hubs) == 2
        for hub in leaf_hubs:
            assert len(hub.disks()) == 2

    def test_device_count_excludes_root(self):
        f = prototype_fabric()
        tree = usb_tree_view(f, "host0")[0]
        # 1 root hub + 2 leaf hubs + 4 disks = 7 devices.
        assert tree.device_count() == 7

    def test_failed_hub_disappears(self):
        f = prototype_fabric()
        f.node("leafhub0").fail()
        assert len(visible_disks(f, "host0")) == 2  # lost disks 0,1

    def test_failed_disk_disappears(self):
        f = prototype_fabric()
        f.node("disk0").fail()
        assert "disk0" not in visible_disks(f, "host0")

    def test_switch_rerouting_changes_views(self):
        f = prototype_fabric()
        execute_plan(f, plan_switches(f, [("disk0", "host2")]))
        assert "disk0" in visible_disks(f, "host2")
        assert "disk0" not in visible_disks(f, "host0")

    def test_render_is_textual(self):
        f = prototype_fabric()
        text = render_tree(usb_tree_view(f, "host0"))
        assert "Root" not in text.splitlines()[0]  # first line is the bus
        assert "MassStorage disk0" in text
        assert text.count("Hub") == 3

    def test_find(self):
        f = prototype_fabric()
        tree = usb_tree_view(f, "host0")[0]
        assert tree.find("disk0") is not None
        assert tree.find("disk4") is None


def make_bus(**kwargs):
    sim = Simulator()
    fabric = prototype_fabric()
    bus = UsbBus(sim, fabric, **kwargs)
    recorders = {}
    for h in fabric.hosts():
        recorders[h] = Recorder(sim)
        bus.register_listener(h, recorders[h])
    return sim, fabric, bus, recorders


class TestUsbBus:
    def test_boot_enumeration(self):
        sim, fabric, bus, recorders = make_bus()
        bus.sync()
        sim.run(until=30.0)
        for h in fabric.hosts():
            assert len(bus.os_view(h)) == 4
            attaches = [e for e in recorders[h].log if e[1] == "attach"]
            assert len(attaches) == 4

    def test_boot_batch_takes_base_plus_per_device(self):
        sim, fabric, bus, recorders = make_bus(
            timing=UsbTimingParams(jitter=0.0)
        )
        bus.sync()
        sim.run(until=30.0)
        last_attach = max(t for t, kind, _ in recorders["host0"].log if kind == "attach")
        assert last_attach == pytest.approx(1.30 + 4 * 0.45, abs=1e-6)

    def test_switch_moves_disk_between_hosts(self):
        sim, fabric, bus, recorders = make_bus(timing=UsbTimingParams(jitter=0.0))
        bus.sync()
        sim.run(until=30.0)
        start = sim.now
        execute_plan(fabric, plan_switches(fabric, [("disk0", "host2")]))
        bus.sync()
        sim.run(until=start + 30.0)
        assert "disk0" not in bus.os_view("host0")
        assert "disk0" in bus.os_view("host2")
        detach = [e for e in recorders["host0"].log if e == (start + 0.15, "detach", "disk0")]
        assert detach
        attach_times = [
            t for t, kind, d in recorders["host2"].log if kind == "attach" and d == "disk0"
        ]
        assert attach_times[-1] == pytest.approx(start + 1.30 + 0.45, abs=1e-6)

    def test_batch_enumeration_scales_with_count(self):
        """Figure 6 part 1: recognition delay grows with disks switched."""
        durations = {}
        for count in (1, 2, 4):
            sim, fabric, bus, recorders = make_bus(timing=UsbTimingParams(jitter=0.0))
            bus.sync()
            sim.run(until=30.0)
            start = sim.now
            # Groups 1 and 5 have their alternate leaf hub already routed
            # to host3, so each disk moves with a single disk-switch turn.
            disks = ["disk2", "disk3", "disk10", "disk11"]
            pairs = [(d, "host3") for d in disks[:count]]
            execute_plan(fabric, plan_switches(fabric, pairs))
            bus.sync()
            sim.run(until=start + 60.0)
            times = [
                t
                for t, kind, d in recorders["host3"].log
                if kind == "attach" and t > start
            ]
            durations[count] = max(times) - start
        assert durations[1] < durations[2] < durations[4]
        assert durations[2] - durations[1] == pytest.approx(0.45, abs=1e-6)

    def test_power_cut_detaches(self):
        sim, fabric, bus, recorders = make_bus()
        bus.sync()
        sim.run(until=30.0)
        bus.set_disk_power("disk0", False)
        sim.run(until=40.0)
        assert "disk0" not in bus.os_view("host0")
        bus.set_disk_power("disk0", True)
        sim.run(until=60.0)
        assert "disk0" in bus.os_view("host0")

    def test_unknown_disk_power_rejected(self):
        sim, fabric, bus, _ = make_bus()
        with pytest.raises(KeyError):
            bus.set_disk_power("diskX", True)

    def test_intel_quirk_limits_view(self):
        sim = Simulator()
        fabric = prototype_fabric()
        bus = UsbBus(sim, fabric, quirks=UsbQuirks(max_devices_per_port=2))
        bus.sync()
        sim.run(until=60.0)
        for h in fabric.hosts():
            assert len(bus.os_view(h)) == 2

    def test_detach_during_enumeration_cancels_attach(self):
        sim, fabric, bus, recorders = make_bus(timing=UsbTimingParams(jitter=0.0))
        bus.sync()
        # Before enumeration finishes (takes >1.3s), move disk0 away.
        def flip():
            execute_plan(fabric, plan_switches(fabric, [("disk0", "host2")]))
            bus.sync()

        sim.call_in(0.5, flip)
        sim.run(until=30.0)
        assert "disk0" not in bus.os_view("host0")
        assert "disk0" in bus.os_view("host2")

    def test_undetected_switch_adds_power_cycle_delay(self):
        sim = Simulator()
        fabric = prototype_fabric()
        bus = UsbBus(
            sim,
            fabric,
            timing=UsbTimingParams(jitter=0.0),
            quirks=UsbQuirks(undetected_switch_probability=1.0, power_cycle_delay=4.0),
        )
        rec = Recorder(sim)
        bus.register_listener("host0", rec)
        bus.sync()
        sim.run(until=60.0)
        first_attach = min(t for t, kind, _ in rec.log if kind == "attach")
        assert first_attach >= 1.30 + 0.45 + 4.0

    def test_failure_then_sync_detaches_subtree(self):
        sim, fabric, bus, recorders = make_bus()
        bus.sync()
        sim.run(until=30.0)
        fabric.node("leafhub0").fail()
        bus.sync()
        sim.run(until=40.0)
        view = bus.os_view("host0")
        assert "disk0" not in view and "disk1" not in view
