"""Tests for GF(256), Reed-Solomon, and the striped store overlay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import build_deployment
from repro.ec import DecodeError, RSCode, StripedStore
from repro.ec import gf256 as gf
from repro.workload import MB


class TestGf256:
    def test_add_is_xor(self):
        assert gf.add(0b1010, 0b0110) == 0b1100

    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert gf.mul(a, 1) == a
            assert gf.mul(a, 0) == 0

    def test_mul_commutes(self):
        for a in (3, 77, 200, 255):
            for b in (5, 99, 254):
                assert gf.mul(a, b) == gf.mul(b, a)

    def test_inverse(self):
        for a in range(1, 256):
            assert gf.mul(a, gf.inv(a)) == 1

    def test_div_consistent_with_mul(self):
        for a in (7, 42, 250):
            for b in (3, 89, 255):
                assert gf.mul(gf.div(a, b), b) == a

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            gf.inv(0)
        with pytest.raises(ZeroDivisionError):
            gf.div(5, 0)

    def test_distributive(self):
        for a, b, c in ((3, 5, 7), (200, 100, 50), (255, 254, 253)):
            assert gf.mul(a, gf.add(b, c)) == gf.add(gf.mul(a, b), gf.mul(a, c))


class TestRSCode:
    def test_round_trip_no_erasures(self):
        code = RSCode(4, 2)
        data = bytes(range(256)) * 3
        shards = code.encode(data)
        assert len(shards) == 6
        recovered = code.decode({i: shards[i] for i in range(4)}, len(data))
        assert recovered == data

    def test_recover_from_data_erasures(self):
        code = RSCode(4, 2)
        data = b"the cold data lives on usb disks" * 11
        shards = code.encode(data)
        available = {1: shards[1], 3: shards[3], 4: shards[4], 5: shards[5]}
        assert code.decode(available, len(data)) == data

    def test_every_erasure_pattern(self):
        """Any m=2 erasures out of 6 shards are recoverable."""
        import itertools

        code = RSCode(4, 2)
        data = bytes(i % 251 for i in range(1000))
        shards = code.encode(data)
        for lost in itertools.combinations(range(6), 2):
            available = {
                i: shards[i] for i in range(6) if i not in lost
            }
            assert code.decode(available, len(data)) == data, lost

    def test_too_few_shards(self):
        code = RSCode(4, 2)
        shards = code.encode(b"x" * 100)
        with pytest.raises(DecodeError):
            code.decode({0: shards[0], 1: shards[1], 2: shards[2]}, 100)

    def test_inconsistent_sizes(self):
        code = RSCode(2, 1)
        with pytest.raises(DecodeError):
            code.decode({0: b"ab", 1: b"a"}, 3)

    def test_reconstruct_single_shard(self):
        code = RSCode(3, 2)
        data = b"rebuild me" * 30
        shards = code.encode(data)
        survivors = {i: shards[i] for i in (0, 2, 3)}
        assert code.reconstruct_shard(survivors, 1, len(data)) == shards[1]
        assert code.reconstruct_shard(survivors, 4, len(data)) == shards[4]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RSCode(0, 2)
        with pytest.raises(ValueError):
            RSCode(200, 100)

    def test_empty_data(self):
        code = RSCode(4, 2)
        shards = code.encode(b"")
        assert all(s == b"" for s in shards)

    @given(
        data=st.binary(min_size=1, max_size=4096),
        k=st.integers(min_value=1, max_value=8),
        m=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_any_k_shards_decode(self, data, k, m, seed):
        import random

        code = RSCode(k, m)
        shards = code.encode(data)
        rng = random.Random(seed)
        keep = rng.sample(range(k + m), k)
        available = {i: shards[i] for i in keep}
        assert code.decode(available, len(data)) == data


class TestStripedStore:
    def build(self, k=4, m=2):
        dep = build_deployment()
        dep.settle(15.0)
        client = dep.new_client("ec-app", service="ec")
        spaces = []
        used = []

        def provision():
            from repro.cluster.namespace import parse_space_id

            for _ in range(k + m):
                info = yield from client.allocate(256 * MB, exclude_disks=used)
                used.append(parse_space_id(info["space_id"])[1])
                space = yield from client.mount(info["space_id"])
                spaces.append(space)

        dep.sim.run_until_event(dep.sim.process(provision()))
        store = StripedStore(
            sim=dep.sim, code=RSCode(k, m), spaces=spaces, space_bytes=256 * MB
        )
        return dep, client, store, used

    def test_put_get_round_trip(self):
        dep, client, store, used = self.build()
        payload = bytes(i % 256 for i in range(3 * MB))

        def scenario():
            yield from store.put("obj1", payload)
            result = yield from store.get("obj1")
            return result

        assert dep.sim.run_until_event(dep.sim.process(scenario())) == payload
        assert store.degraded_reads == 0

    def test_degraded_read_after_disk_failure(self):
        dep, client, store, used = self.build()
        payload = b"erasure coded cold data" * 1000

        def write():
            yield from store.put("obj1", payload)

        dep.sim.run_until_event(dep.sim.process(write()))
        # Fail the disk under shard 0 (and its host lookups).
        from repro.faults import FaultInjector

        FaultInjector(dep).fail_disk(used[0])
        dep.settle(5.0)

        def read():
            return (yield from store.get("obj1"))

        result = dep.sim.run_until_event(dep.sim.process(read()))
        assert result == payload
        assert store.degraded_reads == 1

    def test_repair_rebuilds_onto_replacement(self):
        dep, client, store, used = self.build()
        payload = bytes(range(256)) * 512

        def write():
            yield from store.put("obj1", payload)

        dep.sim.run_until_event(dep.sim.process(write()))
        from repro.faults import FaultInjector

        FaultInjector(dep).fail_disk(used[1])
        dep.settle(5.0)

        def repair_and_read():
            from repro.cluster.namespace import parse_space_id

            info = yield from client.allocate(256 * MB, exclude_disks=used)
            replacement = yield from client.mount(info["space_id"])
            rebuilt = yield from store.repair(1, replacement)
            data = yield from store.get("obj1")
            return rebuilt, data

        rebuilt, data = dep.sim.run_until_event(dep.sim.process(repair_and_read()))
        assert rebuilt == 1
        assert data == payload

    def test_wrong_space_count_rejected(self):
        dep = build_deployment()
        with pytest.raises(ValueError):
            StripedStore(sim=dep.sim, code=RSCode(4, 2), spaces=[], space_bytes=MB)

    def test_duplicate_object_rejected(self):
        dep, client, store, used = self.build(k=2, m=1)

        def scenario():
            yield from store.put("x", b"abc")
            yield from store.put("x", b"def")

        with pytest.raises(ValueError):
            dep.sim.run_until_event(dep.sim.process(scenario()))
