"""Every lint rule fires on its bad fixture and stays silent on good.

Fixtures live in ``tests/analysis_fixtures/``: one known-bad and one
known-good file per rule, plus ``suppressed.py`` exercising the inline
``# repro-lint: ignore[...]`` waiver syntax.
"""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, Linter, all_rule_ids, lint_paths

FIXTURES = Path(__file__).parent / "analysis_fixtures"

RULE_FIXTURES = [
    ("DET001", "det001_bad.py", "det001_good.py"),
    ("DET002", "det002_bad.py", "det002_good.py"),
    ("DET003", "det003_bad.py", "det003_good.py"),
    ("DET004", "det004_bad.py", "det004_good.py"),
    ("DET005", "det005_bad.py", "det005_good.py"),
    ("UNIT001", "unit001_bad.py", "unit001_good.py"),
    ("UNIT002", "unit002_bad.py", "unit002_good.py"),
    ("UNIT003", "unit003_bad.py", "unit003_good.py"),
    ("UNIT004", "unit004_bad.py", "unit004_good.py"),
    ("UNIT005", "unit005_bad.py", "unit005_good.py"),
    ("UNIT006", "unit006_bad.py", "unit006_good.py"),
    ("PROC001", "proc001_bad.py", "proc001_good.py"),
    ("PROC002", "proc002_bad.py", "proc002_good.py"),
    ("PROC003", "proc003_bad.py", "proc003_good.py"),
    ("PROC004", "proc004_bad.py", "proc004_good.py"),
]


def lint_fixture(name, config=LintConfig()):
    return Linter(config=config).lint_paths([str(FIXTURES / name)])


def test_fixture_table_covers_every_rule():
    assert sorted(rule_id for rule_id, _, _ in RULE_FIXTURES) == sorted(
        all_rule_ids()
    )


@pytest.mark.parametrize("rule_id,bad,good", RULE_FIXTURES)
def test_rule_fires_on_bad_fixture(rule_id, bad, good):
    report = lint_fixture(bad)
    assert report.findings, f"{rule_id} produced no findings on {bad}"
    assert {f.rule_id for f in report.findings} == {rule_id}
    assert all(f.line > 0 for f in report.findings)


@pytest.mark.parametrize("rule_id,bad,good", RULE_FIXTURES)
def test_rule_silent_on_good_fixture(rule_id, bad, good):
    report = lint_fixture(good)
    assert report.ok, report.render()
    assert report.suppressed == []


def test_det001_flags_each_usage_site():
    report = lint_fixture("det001_bad.py")
    # import, from-import, and the three call sites.
    assert len(report.findings) == 5


def test_suppression_comment_silences_and_is_counted():
    report = lint_fixture("suppressed.py")
    assert report.ok, report.render()
    assert len(report.suppressed) == 3
    assert {s.rule_id for s in report.suppressed} == {"DET001", "DET004"}


def test_audit_render_lists_suppressions():
    report = lint_fixture("suppressed.py")
    rendered = report.render(audit=True)
    assert "Suppressions in effect (3):" in rendered
    assert "suppressed.py" in rendered


def test_rng_module_exemption():
    config = LintConfig(rng_modules=("analysis_fixtures/det001_bad.py",))
    report = lint_fixture("det001_bad.py", config=config)
    assert report.ok, report.render()


def test_wallclock_exemption():
    config = LintConfig(wallclock_exempt=("analysis_fixtures/det002_bad.py",))
    report = lint_fixture("det002_bad.py", config=config)
    assert report.ok, report.render()


def test_parse_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    report = lint_paths([str(bad)])
    assert not report.ok
    assert report.parse_errors and report.parse_errors[0].rule_id == "PARSE"


def test_missing_path_is_an_error_not_a_silent_pass():
    report = lint_paths(["no/such/path"])
    assert not report.ok
    assert report.parse_errors[0].rule_id == "IO"


def test_non_python_file_is_an_error(tmp_path):
    other = tmp_path / "notes.txt"
    other.write_text("hello", encoding="utf-8")
    report = lint_paths([str(other)])
    assert not report.ok
    assert report.parse_errors[0].rule_id == "IO"


def test_directory_discovery_finds_all_fixtures():
    report = lint_paths([str(FIXTURES)])
    assert report.files_checked == len(list(FIXTURES.glob("*.py")))
    bad_rule_ids = {f.rule_id for f in report.findings}
    assert bad_rule_ids == set(all_rule_ids())
