"""Unit-dimension analyzer internals: inference seeds and the algebra.

The fixture suite (``test_analysis_lint.py``) proves each UNIT rule
fires/stays silent on its dedicated fixture pair; these tests pin the
behaviour of the underlying dimension lattice — what the checker infers
from annotations and suffixes, which products/quotients are sanctioned,
and that unknown dimensions never produce findings (the conservative
contract that keeps the false-positive rate at zero).
"""

import ast
import textwrap

from repro.analysis import Linter
from repro.analysis.units import Dim, annotation_dim, name_suffix_dim


def lint_source(tmp_path, source):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return Linter().lint_paths([str(path)])


def rule_ids(report):
    return sorted({f.rule_id for f in report.findings})


# -- inference seeds --------------------------------------------------------


def test_name_suffix_dim_vocabulary():
    assert name_suffix_dim("idle_watts") is Dim.WATTS
    assert name_suffix_dim("watts") is Dim.WATTS
    assert name_suffix_dim("rebuild_bytes") is Dim.BYTES
    assert name_suffix_dim("spin_up_seconds") is Dim.SECONDS
    assert name_suffix_dim("demand_bytes_per_second") is Dim.BYTES_PER_SEC
    assert name_suffix_dim("peak_mb_per_second") is Dim.MBPS
    # Suffixes match on word boundaries only: no embedded-word guesses.
    assert name_suffix_dim("kilowatts") is None
    assert name_suffix_dim("megabytes_total") is None


def test_annotation_dim_unwraps_wrappers():
    def dim_of(expr):
        return annotation_dim(ast.parse(expr, mode="eval").body)

    assert dim_of("Watts") is Dim.WATTS
    assert dim_of("units.SimSeconds") is Dim.SECONDS
    assert dim_of("'Bytes'") is Dim.BYTES
    assert dim_of("Optional[BytesPerSec]") is Dim.BYTES_PER_SEC
    assert dim_of("Final[Joules]") is Dim.JOULES
    assert dim_of("Dict[str, Watts]") is None
    assert dim_of("float") is None


# -- the algebra ------------------------------------------------------------


def test_sanctioned_products_and_quotients_are_clean(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from repro.units import Bytes, BytesPerSec, Joules, SimSeconds, Watts


        def energy(power: Watts, interval: SimSeconds) -> Joules:
            return power * interval


        def mean_power(total: Joules, interval: SimSeconds) -> Watts:
            return total / interval


        def duration(total: Joules, power: Watts) -> SimSeconds:
            return total / power


        def transfer_time(size: Bytes, rate: BytesPerSec) -> SimSeconds:
            return size / rate


        def moved(rate: BytesPerSec, interval: SimSeconds) -> Bytes:
            return rate * interval
        """,
    )
    assert report.ok, report.render()


def test_known_product_contradicting_return_annotation_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from repro.units import SimSeconds, Watts


        def bogus(power: Watts, interval: SimSeconds) -> Watts:
            return power * interval
        """,
    )
    assert rule_ids(report) == ["UNIT003"]


def test_unsanctioned_product_is_unknown_not_flagged(tmp_path):
    # Watts * Watts has no entry in the algebra: the result is unknown,
    # and unknown must stay silent rather than guess a contradiction.
    report = lint_source(
        tmp_path,
        """
        from repro.units import Joules, Watts


        def bogus(power: Watts, other: Watts) -> Joules:
            return power * other
        """,
    )
    assert report.ok, report.render()


def test_scalar_multiplication_preserves_dimension(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from repro.units import Watts


        def doubled(power: Watts) -> Watts:
            return power * 2.0


        def ratio(a: Watts, b: Watts) -> float:
            return a / b
        """,
    )
    assert report.ok, report.render()


def test_additive_mix_and_comparison_mix_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from repro.units import Joules, SimSeconds, Watts


        def wrong_sum(power: Watts, energy: Joules) -> float:
            return power + energy


        def wrong_compare(deadline: SimSeconds, budget: Joules) -> bool:
            return deadline < budget
        """,
    )
    assert rule_ids(report) == ["UNIT001", "UNIT002"]


def test_unknown_dimensions_never_flagged(tmp_path):
    # Unannotated, unsuffixed values are unknown: the checker must stay
    # silent rather than guess.
    report = lint_source(
        tmp_path,
        """
        def mystery(a, b):
            return a + b * 1_000_000 - b / a
        """,
    )
    assert report.ok, report.render()


def test_call_boundary_checks_keywords_and_positionals(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from repro.units import MBps, Watts


        def sink(rate: MBps) -> None:
            del rate


        def driver(power: Watts) -> None:
            sink(power)
            sink(rate=power)
        """,
    )
    assert rule_ids(report) == ["UNIT004"]
    assert len(report.findings) == 2


def test_magic_byte_literal_flagged_but_named_constant_clean(tmp_path):
    bad = lint_source(
        tmp_path,
        """
        from repro.units import Bytes


        def to_mb(size: Bytes) -> float:
            return size / 1e6
        """,
    )
    assert rule_ids(bad) == ["UNIT005"]
    good = lint_source(
        tmp_path,
        """
        from repro.units import MB, Bytes


        def to_mb(size: Bytes) -> float:
            return size / MB
        """,
    )
    assert good.ok, good.render()


def test_suffix_contradiction_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from repro.units import Watts


        def leak(power: Watts) -> None:
            total_seconds = power
            del total_seconds
        """,
    )
    assert rule_ids(report) == ["UNIT006"]


def test_module_constants_seed_inference(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from repro.units import SimSeconds, Watts

        IDLE_POWER = Watts(4.0)


        def wrong(interval: SimSeconds) -> float:
            return IDLE_POWER + interval
        """,
    )
    assert rule_ids(report) == ["UNIT001"]


def test_self_attribute_dims_from_class_body(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from repro.units import Joules, Watts


        class Meter:
            budget: Watts

            def overdraw(self, energy: Joules) -> bool:
                return self.budget < energy
        """,
    )
    assert rule_ids(report) == ["UNIT002"]
