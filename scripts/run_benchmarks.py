#!/usr/bin/env python
"""Record wall-clock and sim-throughput benchmarks into BENCH_*.json.

Thin CLI over :mod:`repro.benchmarks`: runs suite benchmarks
(``alloc_scale``, ``kernel_throughput``) or registered experiments,
and appends one record per run to ``BENCH_<name>.json`` (a JSON list).
Successive CI runs accumulate records so throughput regressions show
up as a series.  ``repro bench`` exposes the same suite without
knowing about ``scripts/``.

Usage::

    python scripts/run_benchmarks.py                 # figure5 only (smoke)
    python scripts/run_benchmarks.py alloc_scale kernel_throughput
    python scripts/run_benchmarks.py --repeat 3      # best-of-3 wall time
    python scripts/run_benchmarks.py --smoke         # 16-disk sizes only
    python scripts/run_benchmarks.py --out-dir /tmp  # write elsewhere
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.benchmarks import (  # noqa: E402
    append_record,
    available_benchmarks,
    run_benchmark,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="benchmarks to run (default: figure5)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="runs per benchmark (best wall time)"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="seed for generated benchmark workloads"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="restrict scale sweeps to the smallest (16-disk) size",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory for BENCH_*.json files (default: repo root)",
    )
    args = parser.parse_args(argv)

    names = args.experiments or ["figure5"]
    known = set(available_benchmarks())
    unknown = [n for n in names if n not in known]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        record = run_benchmark(
            name, repeat=max(1, args.repeat), seed=args.seed, smoke=args.smoke
        )
        path = append_record(args.out_dir, record)
        print(
            f"{name}: {record['wall_seconds']}s wall, "
            f"{record['sim_events']:.0f} sim events "
            f"({record['sim_events_per_wall_second']} ev/s) -> {path}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
