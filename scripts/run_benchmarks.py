#!/usr/bin/env python
"""Record wall-clock and sim-throughput benchmarks into BENCH_*.json.

Runs experiments from the :data:`repro.experiments.EXPERIMENTS`
registry, times them on the wall clock, pulls the simulated event count
from each run's obs registry dump, and appends one record per run to
``BENCH_<experiment>.json`` (a JSON list).  Successive CI runs
accumulate records so throughput regressions show up as a series.

Wall-clock use is fine here: this script measures the *simulator*, it
never feeds timestamps into it (and ``scripts/`` is outside the
determinism linter's reach by design).

Usage::

    python scripts/run_benchmarks.py                 # figure5 only (smoke)
    python scripts/run_benchmarks.py figure5 duplex  # chosen experiments
    python scripts/run_benchmarks.py --repeat 3      # best-of-3 wall time
    python scripts/run_benchmarks.py --out-dir /tmp  # write elsewhere
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments import EXPERIMENTS  # noqa: E402

BENCH_SCHEMA_VERSION = 1


def bench_one(name: str, repeat: int) -> Dict:
    """Run ``name`` ``repeat`` times; report best wall time + counters."""
    experiment = EXPERIMENTS.get(name)
    wall_times: List[float] = []
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = experiment.run()
        wall_times.append(time.perf_counter() - started)
    assert result is not None
    obs = result.obs or {}
    counters = obs.get("counters", {})
    sim_events = counters.get("sim.events", 0.0)
    best_wall = min(wall_times)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "experiment": name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repeat": repeat,
        "wall_seconds": round(best_wall, 4),
        "wall_seconds_all": [round(t, 4) for t in wall_times],
        "sim_events": sim_events,
        "sim_events_per_wall_second": (
            round(sim_events / best_wall, 1) if best_wall > 0 else None
        ),
        "counters": {k: v for k, v in sorted(counters.items())},
    }


def append_record(out_dir: Path, record: Dict) -> Path:
    path = out_dir / f"BENCH_{record['experiment']}.json"
    history: List[Dict] = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append(record)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiments to benchmark (default: figure5)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="runs per experiment (best wall time)"
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory for BENCH_*.json files (default: repo root)",
    )
    args = parser.parse_args(argv)

    names = args.experiments or ["figure5"]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        record = bench_one(name, max(1, args.repeat))
        path = append_record(args.out_dir, record)
        print(
            f"{name}: {record['wall_seconds']}s wall, "
            f"{record['sim_events']:.0f} sim events "
            f"({record['sim_events_per_wall_second']} ev/s) -> {path}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
