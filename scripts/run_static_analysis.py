#!/usr/bin/env python
"""Run the determinism linter (and mypy, when available) over the tree.

Exit status is nonzero when any unsuppressed finding or type error is
reported, so this doubles as the CI gate
(``tests/test_static_analysis_clean.py`` runs the same checks inside
the default pytest run).  The mypy pass applies the pyproject strict
profile to ``repro.sim``, ``repro.analysis`` and ``repro.obs``.

Usage::

    python scripts/run_static_analysis.py               # lint src/repro
    python scripts/run_static_analysis.py path/to/code  # lint elsewhere
    python scripts/run_static_analysis.py --no-mypy     # linter only
    python scripts/run_static_analysis.py --audit       # list suppressions
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis import Linter  # noqa: E402  (needs sys.path tweak first)


def run_mypy(paths: List[str]) -> int:
    """Run mypy with the pyproject config; 0 when clean or unavailable."""
    if importlib.util.find_spec("mypy") is None:
        print("mypy: not installed, skipping type check")
        return 0
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(REPO_ROOT / "pyproject.toml"),
        *paths,
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT)
    return completed.returncode


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--audit", action="store_true", help="list inline suppressions"
    )
    parser.add_argument(
        "--no-mypy", action="store_true", help="skip the mypy pass"
    )
    args = parser.parse_args(argv)

    paths = args.paths or [str(SRC / "repro")]
    report = Linter().lint_paths(paths)
    print(report.render(audit=args.audit))

    status = 0 if report.ok else 1
    if not args.no_mypy:
        mypy_status = run_mypy(paths)
        if mypy_status != 0:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
