#!/usr/bin/env python
"""Run the repro linter (and mypy, when available) over the tree.

The linter applies all three rule families — determinism (DET), units
(UNIT) and sim-process protocol (PROC).  Exit status is nonzero when
any unsuppressed finding or type error is reported, so this doubles as
the CI gate (``tests/test_static_analysis_clean.py`` runs the same
checks inside the default pytest run).  The mypy pass applies the
pyproject strict profile to ``repro.sim``, ``repro.analysis``,
``repro.obs``, ``repro.power``, ``repro.fabric``, ``repro.gateway``
and ``repro.shardstore``.

After the human-readable report the script emits one machine-readable
``lint-summary: {...}`` line (rule -> finding/suppression counts), and
default-path runs gate inline-suppression growth against the committed
``LINT_BASELINE.json``: a rule whose suppression count exceeds the
baseline fails the run until the waiver is justified and the baseline
regenerated with ``--update-baseline``.

Default-path invocations also run a perf smoke: the ``alloc_scale``,
``kernel_throughput``, ``gateway`` and ``shardstore`` benchmarks at
their smoke sizes, failing on a >5x wall-clock regression against the
committed ``BENCH_*.json`` baselines (skipped when explicit paths are
passed, or with ``--no-perf``).  The gateway leg runs with tracing
disarmed and is gated at 1.1x — the NULL_TRACER no-op proof.  The
kernel leg also compares the calendar-queue scheduler against the heap
reference at 16/240/1920 concurrent timers and fails if the calendar
falls behind heap by more than 1.5x at any depth.

Default-path runs finish with an energy-ledger leg: one small
gateway_slo point with the ledger armed must satisfy the DESIGN §15
conservation identity, and an identical rerun must produce a
byte-identical canonical energy export.  The unarmed-overhead half of
that gate rides the 1.1x gateway perf leg, which runs with the ledger
disarmed.

Usage::

    python scripts/run_static_analysis.py               # lint src/repro
    python scripts/run_static_analysis.py path/to/code  # lint elsewhere
    python scripts/run_static_analysis.py --no-mypy     # linter only
    python scripts/run_static_analysis.py --no-perf     # skip perf smoke
    python scripts/run_static_analysis.py --audit       # list suppressions
    python scripts/run_static_analysis.py --update-baseline  # accept suppressions
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

PERF_REGRESSION_FACTOR = 5.0
#: The gateway smoke gate is much tighter than the generic 5x factor:
#: with tracing off, every trace call sites hits the NULL_TRACER no-op
#: path, and the run must stay within 10% of the committed baseline —
#: the proof that instrumenting the request path costs nothing when
#: disarmed.
GATEWAY_TRACING_OFF_FACTOR = 1.1
#: The calendar queue must deliver at least 1/1.5 of the heap
#: reference's throughput at every compared queue depth (in practice it
#: matches at fan 16 and pulls ahead at 240/1920; 1.5 absorbs
#: single-core scheduler noise at smoke sizes).
KERNEL_SCHEDULER_FACTOR = 1.5

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
LINT_BASELINE = REPO_ROOT / "LINT_BASELINE.json"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis import Linter  # noqa: E402  (needs sys.path tweak first)


def run_mypy(paths: List[str]) -> int:
    """Run mypy with the pyproject config; 0 when clean or unavailable."""
    if importlib.util.find_spec("mypy") is None:
        print("mypy: not installed, skipping type check")
        return 0
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(REPO_ROOT / "pyproject.toml"),
        *paths,
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT)
    return completed.returncode


def print_lint_summary(report) -> None:
    """One machine-readable line: rule -> finding/suppression counts."""
    data = report.to_dict()
    summary = {
        "files_checked": data["files_checked"],
        "by_rule": data["by_rule"],
        "suppressed_by_rule": data["suppressed_by_rule"],
    }
    print("lint-summary: " + json.dumps(summary, sort_keys=True))


def check_lint_baseline(report, update: bool, baseline_path: Path = LINT_BASELINE) -> int:
    """Gate inline-suppression growth against the committed baseline.

    Unsuppressed findings already fail the run outright, so this gate
    watches the other escape hatch: a rule whose ``# repro-lint:
    ignore[...]`` count exceeds the committed baseline fails until the
    waiver is justified in review and the baseline regenerated with
    ``--update-baseline``.  Shrinking counts pass (and suggest a
    baseline refresh); a missing baseline file skips the gate loudly.
    """
    current = report.suppressed_by_rule()
    if update:
        baseline_path.write_text(
            json.dumps({"suppressed_by_rule": current}, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"lint-baseline: wrote {baseline_path.name}")
        return 0
    if not baseline_path.exists():
        print(f"lint-baseline: {baseline_path.name} missing, gate skipped")
        return 0
    baseline = json.loads(baseline_path.read_text(encoding="utf-8")).get(
        "suppressed_by_rule", {}
    )
    status = 0
    for rule_id in sorted(current):
        allowed = int(baseline.get(rule_id, 0))
        if current[rule_id] > allowed:
            print(
                f"lint-baseline: {rule_id}: {current[rule_id]} suppression(s) "
                f"exceeds committed baseline of {allowed} — justify the waiver "
                f"and rerun with --update-baseline"
            )
            status = 1
    if status == 0:
        print("lint-baseline: OK")
    return status


def _baseline_alloc_16(history: List[Dict]) -> Optional[Dict]:
    """The 16-disk size entry of the most recent alloc_scale record."""
    for record in reversed(history):
        for size in record.get("sizes", []):
            if size.get("disks") == 16:
                return size
    return None


def _baseline_kernel_rate(history: List[Dict]) -> Optional[float]:
    """events/sec (fast path) of the most recent kernel record."""
    for record in reversed(history):
        rate = record.get("events_per_second_fast")
        if rate:
            return float(rate)
    return None


def _baseline_gateway_wall(history: List[Dict]) -> Optional[float]:
    """wall_seconds of the most recent smoke-shaped gateway record."""
    for record in reversed(history):
        if record.get("smoke") and record.get("wall_seconds"):
            return float(record["wall_seconds"])
    return None


def _baseline_shardstore_wall(history: List[Dict]) -> Optional[float]:
    """wall_seconds of the most recent smoke-shaped shardstore record."""
    for record in reversed(history):
        if record.get("smoke") and record.get("wall_seconds"):
            return float(record["wall_seconds"])
    return None


def _baseline_tiering_wall(history: List[Dict]) -> Optional[float]:
    """wall_seconds of the most recent smoke-shaped tiering record."""
    for record in reversed(history):
        if record.get("smoke") and record.get("wall_seconds"):
            return float(record["wall_seconds"])
    return None


def run_perf_smoke() -> int:
    """Run the new benchmarks at smoke size; flag >5x regressions.

    Compares against the committed BENCH baselines at the repo root.
    Wall-clock timings at the 16-disk size are sub-millisecond, so every
    comparison carries a small absolute grace on top of the 5x factor to
    keep scheduler noise from failing the gate; a genuine algorithmic
    regression clears both easily.
    """
    from repro.benchmarks import run_benchmark

    status = 0

    record = run_benchmark("alloc_scale", repeat=3, smoke=True)
    current = record["sizes"][0]
    baseline_path = REPO_ROOT / "BENCH_alloc_scale.json"
    if baseline_path.exists():
        baseline = _baseline_alloc_16(json.loads(baseline_path.read_text()))
    else:
        baseline = None
    if baseline is None:
        print("perf: alloc_scale: no committed 16-disk baseline, comparison skipped")
    else:
        for key, grace in (("opt_cold_seconds", 0.025), ("opt_warm_seconds", 0.025)):
            limit = PERF_REGRESSION_FACTOR * baseline[key] + grace
            verdict = "OK" if current[key] <= limit else "REGRESSION"
            print(
                f"perf: alloc_scale 16-disk {key}: {current[key]}s "
                f"(baseline {baseline[key]}s, limit {limit:.4f}s) {verdict}"
            )
            if current[key] > limit:
                status = 1

    record = run_benchmark("kernel_throughput", repeat=3, smoke=True)
    rate = record["events_per_second_fast"]
    baseline_path = REPO_ROOT / "BENCH_kernel_throughput.json"
    if baseline_path.exists():
        baseline_rate = _baseline_kernel_rate(json.loads(baseline_path.read_text()))
    else:
        baseline_rate = None
    if baseline_rate is None:
        print("perf: kernel_throughput: no committed baseline, comparison skipped")
    else:
        floor = baseline_rate / PERF_REGRESSION_FACTOR
        verdict = "OK" if rate >= floor else "REGRESSION"
        print(
            f"perf: kernel_throughput fast path: {rate:.0f} ev/s "
            f"(baseline {baseline_rate:.0f} ev/s, floor {floor:.0f} ev/s) {verdict}"
        )
        if rate < floor:
            status = 1
    # Scheduler comparison: the calendar queue must stay competitive
    # with the heap reference at every queue depth — its whole point is
    # not degrading as pending-timer count grows, so a calendar run
    # slower than heap/KERNEL_SCHEDULER_FACTOR at any fan is a
    # structural regression (window width adaptation gone wrong), not
    # noise.
    for point in record["scheduler_comparison"]:
        heap_rate = point["heap_events_per_second"]
        calendar_rate = point["calendar_events_per_second"]
        floor = heap_rate / KERNEL_SCHEDULER_FACTOR
        verdict = "OK" if calendar_rate >= floor else "REGRESSION"
        print(
            f"perf: kernel scheduler fan {point['fan_out']}: "
            f"calendar {calendar_rate:.0f} ev/s vs heap {heap_rate:.0f} ev/s "
            f"(floor {floor:.0f} ev/s) {verdict}"
        )
        if calendar_rate < floor:
            status = 1

    record = run_benchmark("gateway", repeat=1, smoke=True)
    wall = record["wall_seconds"]
    baseline_path = REPO_ROOT / "BENCH_gateway.json"
    if baseline_path.exists():
        baseline_wall = _baseline_gateway_wall(json.loads(baseline_path.read_text()))
    else:
        baseline_wall = None
    if baseline_wall is None:
        print("perf: gateway: no committed smoke baseline, comparison skipped")
    else:
        limit = GATEWAY_TRACING_OFF_FACTOR * baseline_wall + 0.5
        verdict = "OK" if wall <= limit else "REGRESSION"
        print(
            f"perf: gateway smoke sweep (tracing off): {wall}s wall "
            f"(baseline {baseline_wall}s, limit {limit:.2f}s "
            f"= {GATEWAY_TRACING_OFF_FACTOR}x + 0.5s grace) {verdict}"
        )
        if wall > limit:
            status = 1

    record = run_benchmark("shardstore", repeat=1, smoke=True)
    wall = record["wall_seconds"]
    baseline_path = REPO_ROOT / "BENCH_shardstore.json"
    if baseline_path.exists():
        baseline_wall = _baseline_shardstore_wall(json.loads(baseline_path.read_text()))
    else:
        baseline_wall = None
    if baseline_wall is None:
        print("perf: shardstore: no committed smoke baseline, comparison skipped")
    else:
        limit = PERF_REGRESSION_FACTOR * baseline_wall + 0.5
        verdict = "OK" if wall <= limit else "REGRESSION"
        print(
            f"perf: shardstore smoke (packed vs naive): {wall}s wall "
            f"(baseline {baseline_wall}s, limit {limit:.2f}s) {verdict}"
        )
        if wall > limit:
            status = 1

    record = run_benchmark("tiering", repeat=1, smoke=True)
    wall = record["wall_seconds"]
    baseline_path = REPO_ROOT / "BENCH_tiering.json"
    if baseline_path.exists():
        baseline_wall = _baseline_tiering_wall(json.loads(baseline_path.read_text()))
    else:
        baseline_wall = None
    if baseline_wall is None:
        print("perf: tiering: no committed smoke baseline, comparison skipped")
    else:
        limit = PERF_REGRESSION_FACTOR * baseline_wall + 0.5
        verdict = "OK" if wall <= limit else "REGRESSION"
        print(
            f"perf: tiering smoke (staged vs write-through): {wall}s wall "
            f"(baseline {baseline_wall}s, limit {limit:.2f}s) {verdict}"
        )
        if wall > limit:
            status = 1
    # Staged-vs-write-through outcome gate: even at smoke size, the
    # staged treatment must keep its reasons to exist — fewer spin-ups
    # and hot-latency write acks — and both variants must stay
    # exactly-once.  These are simulated results, so they are exact,
    # not noisy: any flip is a functional regression in the tiering
    # or gateway layers.
    by_mode = {point["mode"]: point for point in record["points"]}
    staged, through = by_mode["staged"], by_mode["write_through"]
    outcome_checks = (
        ("staged fewer spin-ups", staged["spin_ups"] < through["spin_ups"]),
        ("staged write p99 lower", staged["write_p99"] < through["write_p99"]),
        ("both exactly-once", staged["exactly_once"] and through["exactly_once"]),
    )
    for label, holds in outcome_checks:
        verdict = "OK" if holds else "REGRESSION"
        print(f"perf: tiering smoke outcome: {label}: {verdict}")
        if not holds:
            status = 1
    return status


def run_energy_smoke() -> int:
    """Energy-ledger gate: conservation identity + deterministic export.

    Runs one small gateway_slo point with the ledger armed and checks
    the DESIGN §15 identity (attributed joules == meter wall-energy
    integral within the auditor tolerance), then reruns the identical
    point and requires the canonical JSON energy exports to match byte
    for byte.  The unarmed-overhead side of the gate is carried by the
    gateway perf leg above: its smoke sweep runs with the ledger (and
    tracer) disarmed and is held to GATEWAY_TRACING_OFF_FACTOR = 1.1x.
    """
    from repro.experiments import gateway_slo

    status = 0
    exports = []
    for _ in range(2):
        summary = gateway_slo.run_point("batch", seed=11, duration=8.0, energy=True)
        energy = summary["energy"]
        exports.append(
            json.dumps(energy["export"], sort_keys=True, separators=(",", ":"))
        )
    identity = energy["identity"]
    verdict = "OK" if identity["conserved"] else "VIOLATION"
    print(
        f"energy: conservation identity: wall {identity['wall_joules']:.3f} J, "
        f"residual {identity['residual']:.3e} J "
        f"(tolerance {identity['tolerance']:.3e}) {verdict}"
    )
    if not identity["conserved"]:
        status = 1
    identical = exports[0] == exports[1]
    verdict = "OK" if identical else "MISMATCH"
    print(f"energy: double-run export byte-identical: {verdict}")
    if not identical:
        status = 1
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--audit", action="store_true", help="list inline suppressions"
    )
    parser.add_argument(
        "--no-mypy", action="store_true", help="skip the mypy pass"
    )
    parser.add_argument(
        "--no-perf", action="store_true", help="skip the perf smoke benchmarks"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite LINT_BASELINE.json from the current suppression counts",
    )
    args = parser.parse_args(argv)

    paths = args.paths or [str(SRC / "repro")]
    report = Linter().lint_paths(paths)
    print(report.render(audit=args.audit))
    print_lint_summary(report)

    status = 0 if report.ok else 1
    # The suppression baseline guards the default tree, not arbitrary paths.
    if not args.paths:
        if check_lint_baseline(report, update=args.update_baseline) != 0:
            status = 1
    if not args.no_mypy:
        mypy_status = run_mypy(paths)
        if mypy_status != 0:
            status = 1
    # The perf smoke guards the default tree, not arbitrary paths.
    if not args.no_perf and not args.paths:
        if run_perf_smoke() != 0:
            status = 1
        if run_energy_smoke() != 0:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
